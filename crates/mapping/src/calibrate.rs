//! Calibration pipeline for split networks: partitioning, per-layer
//! threshold-scale/vote search, output-layer threshold + thermometer-offset
//! search, activity statistics and dynamic-threshold β search — the
//! end-to-end procedure behind Table 4.
//!
//! The paper "use\[s\] the 60,000 samples in Training Set to optimize the
//! interval of dynamic threshold, while the experimental results are tested
//! in the 10,000 samples in Test Set"; [`build_split_network`] mirrors that
//! discipline — pass a training subset here and score the result on the
//! test set.
//!
//! Calibration proceeds layer by layer in network order (the same greedy
//! discipline as Algorithm 1), caching each sample's value at the layer
//! boundary so a candidate only re-runs the network suffix:
//!
//! 1. **hidden split layers** — grid-search the per-part threshold scale α
//!    and the digital vote count D (the paper fixes α = 1, i.e. `θ/K`, and
//!    implies a majority vote; both are free digital/analog design
//!    parameters);
//! 2. **split output layer** — grid-search the firing threshold θ_out
//!    (quantiles of the observed class scores) jointly with a thermometer
//!    spread δ of per-part offsets, so the part-fire popcount becomes a
//!    graded class score;
//! 3. **β** — the dynamic-threshold strength, line-searched last (with the
//!    measured mean active-input counts `ē_k`).

use crate::arch::DesignConstraints;
use crate::evaluate::{OnesStats, OutputHead, SplitNetwork, SplitScratch};
use crate::homogenize::{self, GaConfig, Partition};
use crate::split::{SplitSpec, VoteRule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sei_engine::{Engine, SeiError, DEFAULT_CHUNK};
use sei_nn::data::Dataset;
use sei_nn::Matrix;
use sei_quantize::qnet::{QLayer, QValue, QuantizedNetwork};
use sei_telemetry::{sei_debug, span};
use serde::{Deserialize, Serialize};

/// How the rows of an oversized matrix are assigned to partitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Natural (original) row order — chunked contiguously.
    Natural,
    /// Uniformly random row order (the Table 4 failure mode).
    Random,
    /// Genetic-algorithm homogenization (Equ. 10 objective).
    Homogenized(GaConfig),
}

/// Configuration of the split-network build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitBuildConfig {
    /// Crossbar and precision constraints (determine which layers split
    /// and into how many parts).
    pub constraints: DesignConstraints,
    /// Partitioning strategy.
    pub strategy: PartitionStrategy,
    /// β candidates for the dynamic-threshold search (empty = keep β = 0).
    pub beta_grid: Vec<f32>,
    /// α (threshold scale) candidates for hidden split layers.
    pub alpha_grid: Vec<f32>,
    /// Number of output-layer threshold candidates (quantiles of the
    /// observed class scores).
    pub output_theta_candidates: usize,
    /// Thermometer-spread multipliers for the split output layer (relative
    /// to the observed score dispersion; 0 ⇒ flat thresholds).
    pub delta_grid: Vec<f32>,
    /// Skip the output-θ search and use this value (e.g. to compare many
    /// random partitions under one calibrated threshold).
    pub fixed_output_theta: Option<f32>,
    /// Switch for the α/D/θ_out/δ grid searches: when `false`, the build
    /// keeps the paper-faithful static defaults (α = 1 i.e. θ/K, majority
    /// vote, flat offsets). The β search is governed solely by
    /// [`SplitBuildConfig::beta_grid`].
    pub calibrate: bool,
    /// Output-layer readout (ADC head by default; see
    /// [`crate::evaluate::OutputHead`]).
    pub output_head: OutputHead,
    /// Run per-part offset coordinate descent on the split output layer.
    /// Off by default: with small calibration sets the extra ~100 adaptive
    /// evaluations overfit (measurably worse test error); enable only with
    /// paper-scale calibration data.
    pub refine_offsets: bool,
    /// Sample cap for calibrating *conv* split layers (their suffix
    /// evaluation is ~100× costlier than an FC suffix; capping keeps the
    /// grid search tractable while FC/output layers use the full set).
    pub conv_calib_cap: usize,
    /// RNG seed (partition shuffling / GA).
    pub seed: u64,
}

impl SplitBuildConfig {
    /// A calibrated homogenized build (static thresholds — no β search) at
    /// the given constraints.
    pub fn homogenized(constraints: DesignConstraints) -> Self {
        SplitBuildConfig {
            constraints,
            strategy: PartitionStrategy::Homogenized(GaConfig::default()),
            beta_grid: Vec::new(),
            alpha_grid: vec![0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.15, 1.3],
            output_theta_candidates: 10,
            delta_grid: vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0],
            fixed_output_theta: None,
            calibrate: true,
            output_head: OutputHead::Adc,
            refine_offsets: false,
            conv_calib_cap: 200,
            seed: 0,
        }
    }

    /// Adds the dynamic-threshold β search with a default grid.
    pub fn with_dynamic_threshold(mut self) -> Self {
        self.beta_grid = vec![0.0, 0.25, 0.5, 0.75, 1.0, 1.25];
        self
    }

    /// Disables all grid searches (paper-faithful static θ/K + majority).
    pub fn uncalibrated(mut self) -> Self {
        self.calibrate = false;
        self
    }

    /// Builder: sets the partitioning strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder: sets the RNG seed (partition shuffling / GA).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the output-layer readout head.
    pub fn with_output_head(mut self, head: OutputHead) -> Self {
        self.output_head = head;
        self
    }

    /// Builder: sets the β candidate grid for the dynamic-threshold
    /// search (empty = keep β = 0).
    pub fn with_beta_grid(mut self, grid: Vec<f32>) -> Self {
        self.beta_grid = grid;
        self
    }

    /// Checks the configuration once, up front, so bad constraints or
    /// grids fail with a clear error instead of deep inside the
    /// calibration loops.
    pub fn validate(&self) -> Result<(), SeiError> {
        let c = &self.constraints;
        if c.max_crossbar < 8 {
            return Err(SeiError::invalid_config(
                "SplitBuildConfig",
                "constraints.max_crossbar",
                format!("must be at least 8, got {}", c.max_crossbar),
            ));
        }
        if c.device_bits == 0 || c.weight_bits == 0 {
            return Err(SeiError::invalid_config(
                "SplitBuildConfig",
                "constraints.weight_bits/device_bits",
                "precisions must be at least 1 bit",
            ));
        }
        if c.sei_rows_per_input() > c.max_crossbar {
            return Err(SeiError::invalid_config(
                "SplitBuildConfig",
                "constraints",
                format!(
                    "one SEI input needs {} physical rows but the crossbar only has {}",
                    c.sei_rows_per_input(),
                    c.max_crossbar
                ),
            ));
        }
        for (field, grid) in [
            ("beta_grid", &self.beta_grid),
            ("alpha_grid", &self.alpha_grid),
            ("delta_grid", &self.delta_grid),
        ] {
            if grid.iter().any(|v| !v.is_finite()) {
                return Err(SeiError::invalid_config(
                    "SplitBuildConfig",
                    field,
                    "grid values must be finite",
                ));
            }
        }
        if self.conv_calib_cap == 0 {
            return Err(SeiError::invalid_config(
                "SplitBuildConfig",
                "conv_calib_cap",
                "must be at least 1",
            ));
        }
        if let Some(t) = self.fixed_output_theta {
            if !t.is_finite() {
                return Err(SeiError::invalid_config(
                    "SplitBuildConfig",
                    "fixed_output_theta",
                    "must be finite",
                ));
            }
        }
        Ok(())
    }
}

/// Per-split-layer report of the homogenization objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceReport {
    /// Layer index in the quantized network.
    pub layer_index: usize,
    /// Number of parts.
    pub parts: usize,
    /// Equ. 10 distance of the natural-order partition.
    pub natural_distance: f64,
    /// Equ. 10 distance of the chosen partition.
    pub chosen_distance: f64,
}

impl DistanceReport {
    /// Fractional reduction of the distance vs. natural order (the paper
    /// reports 80–90 % for fine-trained CNNs).
    pub fn reduction(&self) -> f64 {
        if self.natural_distance <= 0.0 {
            0.0
        } else {
            1.0 - self.chosen_distance / self.natural_distance
        }
    }
}

/// A calibrated split network plus its calibration artifacts.
#[derive(Debug)]
pub struct CalibratedSplit {
    /// The evaluable network.
    pub net: SplitNetwork,
    /// Output-layer firing threshold (when the output layer was split).
    pub output_theta: Option<f32>,
    /// β chosen per split layer (parallel to `net.split_indices()`).
    pub betas: Vec<f32>,
    /// Homogenization-objective reports per split layer.
    pub distances: Vec<DistanceReport>,
}

/// Error rate of a split network over a dataset, evaluated in parallel
/// on `engine`.
///
/// Split-network classification is deterministic, so the chunked count
/// is exactly the sequential count at any thread count.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn split_error_rate(net: &SplitNetwork, data: &Dataset, engine: Engine) -> f32 {
    assert!(!data.is_empty(), "empty dataset");
    let labels = data.labels();
    let errors: usize = engine
        .map_chunks(data.images(), DEFAULT_CHUNK, |c, chunk| {
            let base = c * DEFAULT_CHUNK;
            let mut scratch = SplitScratch::new();
            chunk
                .iter()
                .enumerate()
                .filter(|(i, img)| {
                    net.classify_scratch(img, &mut scratch) != labels[base + i] as usize
                })
                .count()
        })
        .into_iter()
        .sum();
    errors as f32 / data.len() as f32
}

/// The weight matrix of a splittable quantized layer, if it is one.
fn layer_matrix(layer: &QLayer) -> Option<(Matrix, bool)> {
    match layer {
        QLayer::BinaryConv { conv, .. } => Some((conv.weight_matrix(), false)),
        QLayer::BinaryFc { linear, .. } => Some((linear.weight_matrix(), false)),
        QLayer::OutputFc { linear } => Some((linear.weight_matrix(), true)),
        _ => None,
    }
}

/// Builds and calibrates a split network from a quantized network.
///
/// Layers whose SEI physical row count exceeds the crossbar limit are
/// partitioned per the strategy and then calibrated per the module-level
/// procedure, all on `calib`. Per-sample suffix evaluations (the inner
/// loop of every grid search) fan out on `engine`; candidate selection
/// scans scores in grid order, so results are bit-identical at any
/// thread count.
///
/// # Errors
///
/// Returns [`SeiError::InvalidConfig`] for bad constraints or grids and
/// [`SeiError::EmptyDataset`] when a calibration step needs data but
/// `calib` is empty.
pub fn build_split_network(
    qnet: &QuantizedNetwork,
    cfg: &SplitBuildConfig,
    calib: &Dataset,
    engine: Engine,
) -> Result<CalibratedSplit, SeiError> {
    cfg.validate()?;
    let _build_span = span!("build_split_network");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut specs: Vec<Option<SplitSpec>> = Vec::with_capacity(qnet.layers().len());
    let mut distances = Vec::new();
    let mut output_split = false;

    let partition_span = span!("partition");
    for (i, layer) in qnet.layers().iter().enumerate() {
        let Some((wm, is_output)) = layer_matrix(layer) else {
            specs.push(None);
            continue;
        };
        let n = wm.rows();
        let k = cfg.constraints.sei_partition_count(n);
        if k <= 1 {
            specs.push(None);
            continue;
        }
        let partition: Partition = match &cfg.strategy {
            PartitionStrategy::Natural => homogenize::natural_order(n, k),
            PartitionStrategy::Random => homogenize::random_order(n, k, &mut rng),
            PartitionStrategy::Homogenized(ga) => homogenize::genetic(&wm, k, ga, &mut rng, engine),
        };
        distances.push(DistanceReport {
            layer_index: i,
            parts: k,
            natural_distance: homogenize::mean_vector_distance(
                &wm,
                &homogenize::natural_order(n, k),
            ),
            chosen_distance: homogenize::mean_vector_distance(&wm, &partition),
        });
        output_split |= is_output;
        specs.push(Some(SplitSpec::new(partition)));
    }
    drop(partition_span);

    // Observed class-score distribution of the (unsplit) quantized net —
    // the candidate source for θ_out and the thermometer spread. Only the
    // popcount head needs a θ_out at all.
    let output_needs_theta = output_split && cfg.output_head == OutputHead::Popcount;
    let score_quantiles = if output_needs_theta {
        if calib.is_empty() && cfg.fixed_output_theta.is_none() {
            return Err(SeiError::EmptyDataset {
                what: "calibration set (output-θ selection)",
            });
        }
        let mut values: Vec<f32> = engine
            .map(calib.images(), |img| qnet.forward(img).as_slice().to_vec())
            .into_iter()
            .flatten()
            .collect();
        values.sort_by(f32::total_cmp);
        values
    } else {
        Vec::new()
    };
    let quantile = |q: f32| -> f32 {
        if score_quantiles.is_empty() {
            0.0
        } else {
            score_quantiles[((score_quantiles.len() - 1) as f32 * q) as usize]
        }
    };

    let initial_theta = if output_needs_theta {
        Some(cfg.fixed_output_theta.unwrap_or_else(|| quantile(0.7)))
    } else {
        None
    };

    let mut net = SplitNetwork::new(qnet, specs, initial_theta);
    net.set_output_head(cfg.output_head);
    let n_split = net.split_indices().len();
    let mut betas = vec![0.0f32; n_split];
    if n_split == 0 || calib.is_empty() {
        return Ok(CalibratedSplit {
            net,
            output_theta: initial_theta,
            betas,
            distances,
        });
    }

    // --- sequential per-layer calibration with prefix caching ---
    //
    // Pass order: the output head first (so hidden-layer grids are scored
    // through a sane readout), then hidden layers in network order, then
    // the head again (now seeing the final hidden configuration).
    let split_indices = net.split_indices().to_vec();
    let mut output_theta = initial_theta;
    let mut order: Vec<usize> = Vec::new();
    // With the ADC head the output layer computes exactly; it needs no
    // calibration pass.
    let output_positions: Vec<usize> = (0..split_indices.len())
        .filter(|&w| net.split_is_output(w) && cfg.output_head == OutputHead::Popcount)
        .collect();
    let hidden_positions: Vec<usize> = (0..split_indices.len())
        .filter(|&w| !net.split_is_output(w))
        .collect();
    order.extend(&output_positions);
    order.extend(&hidden_positions);
    if !hidden_positions.is_empty() {
        order.extend(&output_positions);
    }
    for &which in &order {
        let layer_idx = split_indices[which];
        // Conv suffixes are expensive to evaluate; cap their calibration
        // sample count (FC/output layers use everything).
        let is_conv = matches!(qnet.layers()[layer_idx], QLayer::BinaryConv { .. });
        let eval_n = if is_conv {
            calib.len().min(cfg.conv_calib_cap.max(1))
        } else {
            calib.len()
        };
        // Cache each sample's value at this layer's input (uses the
        // already-calibrated earlier layers).
        let prefix: Vec<QValue> = engine.map(&calib.images()[..eval_n], |img| {
            net.forward_range(QValue::Analog(img.clone()), 0, layer_idx)
        });

        // Mean active-input statistics for this layer (β's ē_k), measured
        // by running just this layer with stats enabled.
        let mut stats = vec![OnesStats::default(); n_split];
        for v in &prefix {
            let _ = net.forward_range_with_stats(v.clone(), layer_idx, layer_idx + 1, &mut stats);
        }
        if stats[which].count > 0 {
            net.set_mean_ones(which, stats[which].means());
        }

        // Scoring closure: accuracy of the suffix from the cached prefix,
        // fanned out per sample (each sample's suffix run is independent;
        // the summed correct-count is thread-count-invariant).
        let labels = calib.labels();
        let accuracy = |net: &SplitNetwork| -> f32 {
            let correct: usize = engine
                .map_chunks(&prefix, DEFAULT_CHUNK, |c, chunk| {
                    let base = c * DEFAULT_CHUNK;
                    let mut scratch = SplitScratch::new();
                    chunk
                        .iter()
                        .enumerate()
                        .filter(|(j, v)| {
                            let scores = net
                                .forward_range_scratch(
                                    (*v).clone(),
                                    layer_idx,
                                    net.len(),
                                    &mut scratch,
                                )
                                .expect_analog();
                            scores.argmax() == labels[base + j] as usize
                        })
                        .count()
                })
                .into_iter()
                .sum();
            correct as f32 / prefix.len() as f32
        };

        if cfg.calibrate {
            if net.split_is_output(which) {
                // θ_out × thermometer-δ grid.
                let _theta_span = span!("output_theta_delta_grid");
                let k = net.split_parts(which);
                let theta_cands: Vec<f32> = if let Some(t) = cfg.fixed_output_theta {
                    vec![t]
                } else {
                    let n_cand = cfg.output_theta_candidates.max(2);
                    (0..n_cand)
                        .map(|i| quantile(0.30 + 0.69 * i as f32 / (n_cand - 1) as f32))
                        .collect()
                };
                // Spread unit: the observed score dispersion shared across
                // the K parts.
                let unit = ((quantile(0.9) - quantile(0.5)).abs() / k.max(1) as f32).max(1e-6);
                let mut best = (f32::MIN, theta_cands[0], 0.0f32);
                for &theta in &theta_cands {
                    net.set_split_theta(which, theta);
                    for &dmul in &cfg.delta_grid {
                        let delta = dmul * unit;
                        let offsets: Vec<f32> = (0..k)
                            .map(|p| delta * (p as f32 - (k as f32 - 1.0) / 2.0))
                            .collect();
                        net.set_part_offsets(which, offsets);
                        let acc = accuracy(&net);
                        if acc > best.0 {
                            best = (acc, theta, dmul);
                        }
                    }
                }
                net.set_split_theta(which, best.1);
                let delta = best.2 * unit;
                let mut offsets: Vec<f32> = (0..k)
                    .map(|p| delta * (p as f32 - (k as f32 - 1.0) / 2.0))
                    .collect();
                net.set_part_offsets(which, offsets.clone());
                output_theta = Some(best.1);

                // Coordinate-descent refinement of the per-part offsets
                // (each offset is just a programmed reference-column cell,
                // so any vector is realizable). Opt-in: overfits small
                // calibration sets.
                let mut best_acc = best.0;
                for _round in 0..if cfg.refine_offsets { 2 } else { 0 } {
                    for p in 0..k {
                        let current = offsets[p];
                        let mut chosen = current;
                        for step in [-1.0f32, -0.5, 0.5, 1.0] {
                            offsets[p] = current + step * unit;
                            net.set_part_offsets(which, offsets.clone());
                            let acc = accuracy(&net);
                            if acc > best_acc {
                                best_acc = acc;
                                chosen = offsets[p];
                            }
                        }
                        offsets[p] = chosen;
                    }
                }
                net.set_part_offsets(which, offsets);
            } else {
                // (α, D) grid for hidden layers.
                let _alpha_span = span!("alpha_d_grid");
                let k = net.split_parts(which);
                let d_cands: Vec<usize> = (1..=k).collect();
                let mut best = (f32::MIN, 1.0f32, VoteRule::Majority.required(k));
                for &alpha in &cfg.alpha_grid {
                    net.set_theta_scale(which, alpha);
                    for &d in &d_cands {
                        net.set_vote(which, VoteRule::AtLeast(d));
                        let acc = accuracy(&net);
                        if acc > best.0 {
                            best = (acc, alpha, d);
                        }
                    }
                }
                net.set_theta_scale(which, best.1);
                net.set_vote(which, VoteRule::AtLeast(best.2));
                sei_debug!(
                    "split layer {layer_idx}: alpha {:.3}, D {} (calib acc {:.4})",
                    best.1,
                    best.2,
                    best.0
                );
            }
        }

        // β line search (needs ē_k, set above). Runs whenever a grid is
        // supplied, independent of the α/D/θ_out calibration switch — the
        // paper's "Dynamic Threshold" row is plain homogenization plus this
        // compensation.
        if !cfg.beta_grid.is_empty() {
            let _beta_span = span!("beta_search");
            let mut best = (f32::MIN, 0.0f32);
            for &beta in &cfg.beta_grid {
                net.set_beta(which, beta);
                let acc = accuracy(&net);
                if acc > best.0 {
                    best = (acc, beta);
                }
            }
            net.set_beta(which, best.1);
            betas[which] = best.1;
            sei_debug!("split layer {layer_idx}: beta {:.3}", best.1);
        }
    }

    Ok(CalibratedSplit {
        net,
        output_theta,
        betas,
        distances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sei_nn::data::SynthConfig;
    use sei_nn::paper;
    use sei_nn::train::{TrainConfig, Trainer};
    use sei_quantize::algorithm1::{quantize_network, QuantizeConfig};

    fn eng() -> Engine {
        Engine::new(2)
    }

    fn quantized_net2(train: &Dataset) -> QuantizedNetwork {
        let mut net = paper::network2(3);
        Trainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .fit(&mut net, train);
        quantize_network(
            &net,
            &train.truncated(200),
            &QuantizeConfig::default(),
            Engine::single(),
        )
        .unwrap()
        .net
    }

    /// Constraints tight enough to force splitting of Network 2's FC layer
    /// (200 rows) and conv2 (36 rows): capacity (64/4)−1 = 15.
    fn tight() -> DesignConstraints {
        DesignConstraints::paper_default().with_max_crossbar(64)
    }

    #[test]
    fn no_split_needed_returns_plain_network() {
        let train = SynthConfig::new(300, 1).generate();
        let qnet = quantized_net2(&train);
        // Network 2's largest matrix has 200 rows → fits a single SEI
        // crossbar once the capacity exceeds 200 logical rows (rows×4+4).
        let roomy = DesignConstraints::paper_default().with_max_crossbar(1024);
        let cfg = SplitBuildConfig::homogenized(roomy);
        let result = build_split_network(&qnet, &cfg, &train.truncated(50), eng()).unwrap();
        assert!(result.net.split_indices().is_empty());
        assert!(result.output_theta.is_none());
        assert!(result.distances.is_empty());
    }

    #[test]
    fn tight_constraints_split_conv2_and_fc() {
        let train = SynthConfig::new(400, 2).generate();
        let qnet = quantized_net2(&train);
        let cfg = SplitBuildConfig {
            strategy: PartitionStrategy::Natural,
            ..SplitBuildConfig::homogenized(tight())
        };
        let result = build_split_network(&qnet, &cfg, &train.truncated(60), eng()).unwrap();
        assert_eq!(result.net.split_indices().len(), 2);
        // The default ADC head needs no output θ.
        assert!(result.output_theta.is_none());
        // conv2: 36 rows / 15 capacity → 3 parts; fc: 200/15 → 14 parts.
        assert_eq!(result.distances[0].parts, 3);
        assert_eq!(result.distances[1].parts, 14);
    }

    #[test]
    fn homogenized_distance_not_worse_than_natural() {
        let train = SynthConfig::new(400, 3).generate();
        let qnet = quantized_net2(&train);
        let cfg = SplitBuildConfig::homogenized(tight());
        let result = build_split_network(&qnet, &cfg, &train.truncated(40), eng()).unwrap();
        for d in &result.distances {
            assert!(
                d.chosen_distance <= d.natural_distance + 1e-9,
                "layer {}: chosen {} vs natural {}",
                d.layer_index,
                d.chosen_distance,
                d.natural_distance
            );
        }
    }

    #[test]
    fn calibrated_split_stays_close_to_unsplit() {
        // The headline Table 4 behaviour: a calibrated homogenized split
        // should stay in the neighbourhood of the unsplit quantized error,
        // not collapse.
        let train = SynthConfig::new(1200, 4).generate();
        let test = SynthConfig::new(300, 5).generate();
        let qnet = quantized_net2(&train);
        let calib = train.truncated(200);
        let unsplit_err = {
            let errs = test
                .iter()
                .filter(|(img, l)| qnet.classify(img) != *l as usize)
                .count();
            errs as f32 / test.len() as f32
        };
        let build = build_split_network(
            &qnet,
            &SplitBuildConfig::homogenized(tight()),
            &calib,
            eng(),
        )
        .unwrap();
        let err = split_error_rate(&build.net, &test, eng());
        assert!(
            err <= unsplit_err + 0.12,
            "split {err} strayed too far from unsplit {unsplit_err}"
        );
    }

    #[test]
    fn homogenization_beats_random_order_accuracy() {
        // The Table 4 story in miniature: random-order splitting hurts;
        // homogenization recovers most of it.
        let train = SynthConfig::new(1200, 4).generate();
        let test = SynthConfig::new(300, 5).generate();
        let qnet = quantized_net2(&train);
        let calib = train.truncated(150);

        let random = build_split_network(
            &qnet,
            &SplitBuildConfig::homogenized(tight())
                .with_strategy(PartitionStrategy::Random)
                .with_seed(13),
            &calib,
            eng(),
        )
        .unwrap();
        let homog = build_split_network(
            &qnet,
            &SplitBuildConfig::homogenized(tight()),
            &calib,
            eng(),
        )
        .unwrap();

        let err_random = split_error_rate(&random.net, &test, eng());
        let err_homog = split_error_rate(&homog.net, &test, eng());
        assert!(
            err_homog <= err_random + 0.02,
            "homogenized {err_homog} should not lose to random {err_random}"
        );
    }

    #[test]
    fn beta_search_runs_and_does_not_hurt_calibration_accuracy() {
        let train = SynthConfig::new(800, 6).generate();
        let qnet = quantized_net2(&train);
        let calib = train.truncated(100);

        let static_build = build_split_network(
            &qnet,
            &SplitBuildConfig::homogenized(tight()),
            &calib,
            eng(),
        )
        .unwrap();
        let dynamic_build = build_split_network(
            &qnet,
            &SplitBuildConfig::homogenized(tight()).with_dynamic_threshold(),
            &calib,
            eng(),
        )
        .unwrap();
        let err_static = split_error_rate(&static_build.net, &calib, eng());
        let err_dynamic = split_error_rate(&dynamic_build.net, &calib, eng());
        // β = 0 is in the grid, so calibration accuracy can only improve.
        assert!(
            err_dynamic <= err_static + 1e-6,
            "dynamic {err_dynamic} vs static {err_static}"
        );
        assert_eq!(dynamic_build.betas.len(), 2);
    }

    #[test]
    fn uncalibrated_build_keeps_paper_defaults() {
        let train = SynthConfig::new(400, 7).generate();
        let qnet = quantized_net2(&train);
        let cfg = SplitBuildConfig::homogenized(tight()).uncalibrated();
        let result = build_split_network(&qnet, &cfg, &train.truncated(50), eng()).unwrap();
        for spec in result.net.specs().into_iter().flatten() {
            assert_eq!(spec.theta_scale, 1.0);
            assert_eq!(spec.beta, 0.0);
            assert!(spec.part_offsets.is_empty());
            assert_eq!(spec.vote, VoteRule::Majority);
        }
    }

    #[test]
    fn calibration_beats_uncalibrated_on_calib_set() {
        let train = SynthConfig::new(1000, 8).generate();
        let qnet = quantized_net2(&train);
        let calib = train.truncated(150);
        let raw = build_split_network(
            &qnet,
            &SplitBuildConfig::homogenized(tight()).uncalibrated(),
            &calib,
            eng(),
        )
        .unwrap();
        let cal = build_split_network(
            &qnet,
            &SplitBuildConfig::homogenized(tight()),
            &calib,
            eng(),
        )
        .unwrap();
        let err_raw = split_error_rate(&raw.net, &calib, eng());
        let err_cal = split_error_rate(&cal.net, &calib, eng());
        assert!(
            err_cal <= err_raw + 1e-6,
            "calibrated {err_cal} vs uncalibrated {err_raw}"
        );
    }
}
