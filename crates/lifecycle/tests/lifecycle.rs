//! Integration tests for the lifecycle scheduler: strict knob parsing,
//! no-update byte equality with the plain serving path, conservation and
//! rotation properties, and thread-count invariance of the sweep.

use proptest::prelude::*;
use sei_engine::{Engine, SeiError};
use sei_lifecycle::{
    run_lifecycle_sweep, simulate_lifecycle, DutyCycle, LifecycleCell, LifecycleConfig,
    RotateThreshold, UpdatePlan, UpdateStrategy,
};
use sei_serve::{
    simulate, BatchPolicy, ClassMix, LoadModel, ServeConfig, ServiceProfile, StageProfile,
};
use sei_telemetry::env::parse_lookup;

fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
    move |name| {
        pairs
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.to_string())
    }
}

/// Three-stage pipeline with a 1 µs bottleneck (saturation 1e6 inf/s).
fn profile() -> ServiceProfile {
    ServiceProfile::new(
        vec![
            StageProfile::new("conv1", 1000.0),
            StageProfile::new("conv2", 400.0),
            StageProfile::new("fc", 100.0),
        ],
        2.5e-6,
    )
}

/// The same pipeline with every stage replicated `r`× (service times
/// kept, so `drained` exercises the replica-rescaling path).
fn replicated_profile(r: usize) -> ServiceProfile {
    let mut p = profile();
    for s in &mut p.stages {
        s.replication = r;
    }
    p
}

fn config(rate_mult: f64, seed: u64) -> ServeConfig {
    ServeConfig {
        load: LoadModel::Poisson {
            rate_rps: rate_mult * 1e6,
        },
        classes: ClassMix::default(),
        batch: BatchPolicy {
            max_size: 8,
            timeout_ns: 20_000,
        },
        queue_capacity: 64,
        deadline_ns: 0,
        duration_ns: 20_000_000,
        seed,
    }
}

fn lc(strategy: UpdateStrategy, stages: usize, rows: u64, updates: u32) -> LifecycleConfig {
    LifecycleConfig {
        strategy,
        plan: UpdatePlan::uniform(stages, rows),
        update_interval_ns: 2_000_000,
        updates,
        budget: 1_000_000_000,
        ..LifecycleConfig::none(stages)
    }
}

// --- strict `SEI_LIFECYCLE_*` knob parsing (the bench binary's env
// --- convention: unset → default, malformed → error, never silently
// --- replaced; the binary turns the error into exit code 2).

#[test]
fn strategy_knob_parses_strictly() {
    let got: Option<UpdateStrategy> = parse_lookup(
        env_of(&[("SEI_LIFECYCLE_STRATEGY", "drained")]),
        "SEI_LIFECYCLE_STRATEGY",
        "`drained` or `inplace`",
    )
    .unwrap();
    assert_eq!(got, Some(UpdateStrategy::Drained));
    let unset: Option<UpdateStrategy> =
        parse_lookup(env_of(&[]), "SEI_LIFECYCLE_STRATEGY", "a strategy").unwrap();
    assert_eq!(unset, None);
    let err = parse_lookup::<UpdateStrategy>(
        env_of(&[("SEI_LIFECYCLE_STRATEGY", "offline")]),
        "SEI_LIFECYCLE_STRATEGY",
        "`drained` or `inplace`",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("SEI_LIFECYCLE_STRATEGY"), "{msg}");
    assert!(msg.contains("offline"), "{msg}");
}

#[test]
fn duty_cycle_knob_parses_strictly() {
    let got: Option<DutyCycle> = parse_lookup(
        env_of(&[("SEI_LIFECYCLE_DUTY", "0.25")]),
        "SEI_LIFECYCLE_DUTY",
        "a fraction in (0, 1)",
    )
    .unwrap();
    assert!((got.unwrap().fraction() - 0.25).abs() < 1e-12);
    for bad in ["0", "1", "1.5", "-0.1", "lots", "NaN"] {
        let err = parse_lookup::<DutyCycle>(
            env_of(&[("SEI_LIFECYCLE_DUTY", bad)]),
            "SEI_LIFECYCLE_DUTY",
            "a fraction in (0, 1)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("SEI_LIFECYCLE_DUTY"), "{bad}");
    }
}

#[test]
fn rotate_threshold_knob_parses_strictly() {
    let got: Option<RotateThreshold> = parse_lookup(
        env_of(&[("SEI_LIFECYCLE_ROTATE", "1.0")]),
        "SEI_LIFECYCLE_ROTATE",
        "a fraction in (0, 1]",
    )
    .unwrap();
    assert!((got.unwrap().fraction() - 1.0).abs() < 1e-12);
    for bad in ["0", "1.01", "threshold", ""] {
        let err = parse_lookup::<RotateThreshold>(
            env_of(&[("SEI_LIFECYCLE_ROTATE", bad)]),
            "SEI_LIFECYCLE_ROTATE",
            "a fraction in (0, 1]",
        )
        .unwrap_err();
        assert!(err.to_string().contains("SEI_LIFECYCLE_ROTATE"), "{bad}");
    }
}

#[test]
fn numeric_knobs_parse_strictly() {
    // Endurance budget, update count, interval, rows, spares: plain
    // unsigned integers through the same strict path.
    for (var, val) in [
        ("SEI_LIFECYCLE_BUDGET", "100000"),
        ("SEI_LIFECYCLE_UPDATES", "4"),
        ("SEI_LIFECYCLE_INTERVAL_MS", "20"),
        ("SEI_LIFECYCLE_ROWS", "64"),
        ("SEI_LIFECYCLE_SPARES", "2"),
    ] {
        let got: Option<u64> = parse_lookup(env_of(&[(var, val)]), var, "an integer").unwrap();
        assert_eq!(got, Some(val.parse().unwrap()), "{var}");
        let err = parse_lookup::<u64>(env_of(&[(var, "many")]), var, "an integer").unwrap_err();
        assert!(err.to_string().contains(var), "{var}");
    }
}

// --- configuration validation

#[test]
fn validation_rejects_inconsistent_configs() {
    let p = profile();
    let mismatched = lc(UpdateStrategy::Drained, 2, 8, 1);
    assert!(matches!(
        simulate_lifecycle(&p, &config(0.5, 1), &mismatched),
        Err(SeiError::InvalidConfig { .. })
    ));
    let zero_interval = LifecycleConfig {
        update_interval_ns: 0,
        ..lc(UpdateStrategy::Drained, 3, 8, 1)
    };
    assert!(matches!(
        simulate_lifecycle(&p, &config(0.5, 1), &zero_interval),
        Err(SeiError::InvalidConfig { .. })
    ));
    let zero_budget = LifecycleConfig {
        budget: 0,
        ..lc(UpdateStrategy::Drained, 3, 8, 1)
    };
    assert!(matches!(
        simulate_lifecycle(&p, &config(0.5, 1), &zero_budget),
        Err(SeiError::InvalidConfig { .. })
    ));
}

// --- the no-perturbation contract

#[test]
fn no_update_run_is_byte_identical_to_plain_serve() {
    let p = profile();
    for seed in [3u64, 31, 77] {
        let cfg = config(1.3, seed);
        let solo = simulate(&p, &cfg).expect("solo simulates");
        let quiet =
            simulate_lifecycle(&p, &cfg, &LifecycleConfig::none(3)).expect("lifecycle simulates");
        assert_eq!(
            quiet.serve.to_json().to_json(),
            solo.to_json().to_json(),
            "no-update lifecycle NDJSON must be byte-identical to the solo path (seed {seed})"
        );
        assert_eq!(quiet.total_writes, 0);
        assert_eq!(quiet.availability, 1.0);
    }
}

#[test]
fn zero_rows_plan_is_also_inert() {
    let p = profile();
    let cfg = config(0.8, 5);
    let solo = simulate(&p, &cfg).unwrap();
    let quiet = simulate_lifecycle(&p, &cfg, &lc(UpdateStrategy::InPlace, 3, 0, 4)).unwrap();
    assert_eq!(quiet.serve, solo);
    assert_eq!(quiet.updates_applied, 0);
}

// --- update mechanics

#[test]
fn drained_unreplicated_updates_block_and_cost() {
    let p = profile();
    let cfg = config(0.8, 9);
    let r = simulate_lifecycle(&p, &cfg, &lc(UpdateStrategy::Drained, 3, 4, 2)).unwrap();
    assert_eq!(r.updates_applied, 6, "2 updates × 3 stages");
    assert_eq!(r.total_writes, 2 * 3 * 4);
    // 24 rows × 176 µs × 6.76e-7 J/row.
    assert!((r.write_energy_j - 24.0 * 6.76e-7).abs() < 1e-12);
    assert!(r.availability < 1.0, "maintenance windows cost capacity");
    assert!(r.maintenance_ns >= 24 * 176_000);
    // The blocked pipeline must still conserve requests.
    assert_eq!(r.serve.completed + r.serve.shed(), r.serve.arrivals);
}

#[test]
fn drained_replicated_keeps_serving_at_rescaled_rate() {
    let p = replicated_profile(2);
    let cfg = config(0.5, 11);
    let r = simulate_lifecycle(&p, &cfg, &lc(UpdateStrategy::Drained, 3, 4, 2)).unwrap();
    assert_eq!(r.updates_applied, 6);
    // Each window writes rows × replication physical rows.
    assert_eq!(r.total_writes, 2 * 3 * 4 * 2);
    for u in &r.updates {
        assert!((u.capacity_loss - 0.5).abs() < 1e-12, "1/r of 2 replicas");
    }
}

#[test]
fn inplace_updates_never_block_but_slow_reads() {
    let p = profile();
    let cfg = config(0.8, 13);
    let baseline = simulate_lifecycle(&p, &cfg, &LifecycleConfig::none(3)).unwrap();
    let busy = simulate_lifecycle(&p, &cfg, &lc(UpdateStrategy::InPlace, 3, 64, 4)).unwrap();
    assert_eq!(busy.updates_applied, 12);
    assert!(
        busy.serve.latency.p99_ns >= baseline.serve.latency.p99_ns,
        "write duty cycle must not improve tail latency"
    );
    // Duty 0.2 → each window stretches the write time 5×.
    let wt = 64 * 176_000;
    for u in &busy.updates {
        assert_eq!(u.end_ns - u.start_ns, (wt as f64 / 0.2).ceil() as u64);
    }
}

// --- wear and rotation

#[test]
fn wear_rotation_moves_to_least_burdened_spare() {
    let p = profile();
    let cfg = config(0.5, 17);
    let mut c = lc(UpdateStrategy::InPlace, 3, 10, 4);
    c.budget = 25; // threshold 0.8 → rotate at 20 writes: after update 2.
    c.spares = 2;
    let r = simulate_lifecycle(&p, &cfg, &c).unwrap();
    assert!(r.rotations_done > 0, "wear must trigger rotation");
    assert!(r.copies > 0, "each rotation appends an evacuation copy");
    for rot in &r.rotations {
        assert!(
            rot.to_writes <= rot.from_writes,
            "rotation must never target a tile more worn than the evacuee"
        );
    }
    // Wear vector covers stage tiles + spares and sums to total writes.
    assert_eq!(r.wear.len(), 3 + 2);
    assert_eq!(r.wear.iter().sum::<u64>(), r.total_writes);
}

#[test]
fn no_spares_means_rotations_skip_not_crash() {
    let p = profile();
    let mut c = lc(UpdateStrategy::InPlace, 3, 10, 4);
    c.budget = 25;
    c.spares = 0;
    let r = simulate_lifecycle(&p, &config(0.5, 19), &c).unwrap();
    assert_eq!(r.rotations_done, 0);
    assert!(r.rotations_skipped > 0);
    assert_eq!(r.copies, 0);
}

// --- sweep determinism

#[test]
fn sweep_is_thread_count_invariant() {
    let p = profile();
    let cells: Vec<LifecycleCell> = [
        (UpdateStrategy::Drained, 0u32),
        (UpdateStrategy::Drained, 3),
        (UpdateStrategy::InPlace, 3),
    ]
    .iter()
    .map(|&(strategy, updates)| LifecycleCell {
        label: format!("{strategy}-{updates}"),
        profile: p.clone(),
        config: config(1.1, 23),
        lifecycle: lc(strategy, 3, 16, updates),
    })
    .collect();
    let reference = run_lifecycle_sweep(&Engine::single(), &cells).unwrap();
    for threads in [2, 4, 7] {
        let got = run_lifecycle_sweep(&Engine::new(threads), &cells).unwrap();
        assert_eq!(got, reference, "threads={threads}");
    }
    assert_eq!(reference.len(), cells.len());
}

// --- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) The same plan writes the same number of physical rows
    /// whatever the strategy: drained and in-place differ in *when* and
    /// *how* pulses interleave with traffic, never in how many land.
    /// Single-stage pipeline so rotation decisions (which add copy
    /// writes) are strategy-independent too.
    #[test]
    fn writes_conserved_across_strategies(
        rows in 1u64..120,
        updates in 1u32..5,
        seed in 0u64..500,
        budget in 1u64..5_000,
    ) {
        let p = ServiceProfile::new(vec![StageProfile::new("only", 800.0)], 1e-6);
        let mk = |strategy| {
            let mut c = lc(strategy, 1, rows, updates);
            c.budget = budget;
            c.spares = 2;
            c
        };
        let cfg = config(0.6, seed);
        let drained = simulate_lifecycle(&p, &cfg, &mk(UpdateStrategy::Drained)).unwrap();
        let inplace = simulate_lifecycle(&p, &cfg, &mk(UpdateStrategy::InPlace)).unwrap();
        prop_assert_eq!(drained.total_writes, inplace.total_writes);
        prop_assert_eq!(drained.rotations_done, inplace.rotations_done);
        prop_assert!(drained.total_writes >= u64::from(updates) * rows);
    }

    /// (b) Rotation never moves a stage onto a tile more worn than the
    /// one it is leaving, for any budget/threshold/spare combination.
    #[test]
    fn rotation_targets_are_never_more_worn(
        rows in 1u64..60,
        updates in 1u32..6,
        budget in 1u64..200,
        spares in 0usize..4,
        seed in 0u64..500,
    ) {
        let p = profile();
        let mut c = lc(UpdateStrategy::InPlace, 3, rows, updates);
        c.budget = budget;
        c.spares = spares;
        let r = simulate_lifecycle(&p, &config(0.7, seed), &c).unwrap();
        for rot in &r.rotations {
            prop_assert!(rot.to_writes <= rot.from_writes);
        }
        prop_assert_eq!(r.wear.iter().sum::<u64>(), r.total_writes);
    }

    /// (c) Availability is a probability and degrades monotonically as
    /// updates are scheduled more often; goodput never improves under
    /// more reprogramming.
    #[test]
    fn availability_and_goodput_monotone_in_update_frequency(
        seed in 0u64..200,
        rows in 32u64..128,
    ) {
        let p = profile();
        let cfg = config(1.5, seed); // overloaded: lost capacity shows up as shed
        let mut last_avail = f64::INFINITY;
        let mut last_goodput = f64::INFINITY;
        for updates in [0u32, 1, 2, 4] {
            let r = simulate_lifecycle(&p, &cfg, &lc(UpdateStrategy::Drained, 3, rows, updates))
                .unwrap();
            prop_assert!(r.availability <= 1.0 && r.availability >= 0.0);
            prop_assert!(
                r.availability <= last_avail,
                "availability rose from {} to {} at {} updates",
                last_avail, r.availability, updates
            );
            prop_assert!(
                r.serve.throughput_rps <= last_goodput,
                "goodput rose from {} to {} at {} updates",
                last_goodput, r.serve.throughput_rps, updates
            );
            last_avail = r.availability;
            last_goodput = r.serve.throughput_rps;
        }
    }
}
