//! `sei-lifecycle` — live reprogramming of mapped networks on serving
//! tiles.
//!
//! The SEI paper programs an array once and measures inference; a
//! production accelerator must also *re*program — new fine-tunes, wear
//! leveling, remapping around failed tiles — while traffic is being
//! served. This crate schedules those write pulses inside the
//! deterministic serving simulation:
//!
//! * a **write-pulse scheduler** ([`sched`]) — scheduled weight updates
//!   become per-stage reprogramming windows interleaved with live
//!   traffic through [`sei_serve::SimDriver`], costed per row from the
//!   [`sei_cost::CostParams`] write constants (`1.76e-4 s` / `6.76e-7 J`
//!   per row write–verify pass);
//! * two **update strategies** ([`plan`]) — `drained` quiesces one tile
//!   replica at a time (or the whole stage when unreplicated) and
//!   reprograms it offline; `inplace` interleaves row writes between
//!   reads at a configured duty cycle, trading tail latency for
//!   availability;
//! * **endurance budgets and wear-aware rotation** — every window
//!   charges its tile in a [`sei_faults::WearLedger`] whose budget comes
//!   from [`sei_faults::EnduranceModel::pulse_budget`]; a tile crossing
//!   the rotation threshold is evacuated to the least-burdened free
//!   spare mid-run, never to a spare more worn than itself;
//! * a **measurement layer** ([`report`]) — per-window start/end/energy
//!   records, rotation records, capacity-weighted availability over the
//!   arrival horizon, and the underlying serving report, all rendered
//!   in one fixed key order.
//!
//! Everything runs on the serving simulation's integer virtual clock
//! with lifecycle actions ordered by `(time, seq)` and acting first on
//! ties, so a `(profile, serve config, lifecycle config)` triple always
//! produces bit-identical results; with no updates scheduled the output
//! is byte-for-byte the plain [`sei_serve::simulate`] report.
//!
//! # Example
//!
//! Reprogram 16 rows per stage, four times, on a drained pipeline:
//!
//! ```
//! use sei_lifecycle::{simulate_lifecycle, LifecycleConfig, UpdatePlan, UpdateStrategy};
//! use sei_serve::load::LoadModel;
//! use sei_serve::profile::{ServiceProfile, StageProfile};
//! use sei_serve::sim::{BatchPolicy, ServeConfig};
//!
//! let profile = ServiceProfile::new(
//!     vec![
//!         StageProfile::new("conv1", 1000.0),
//!         StageProfile::new("conv2", 400.0),
//!     ],
//!     2.5e-6,
//! );
//! let cfg = ServeConfig {
//!     load: LoadModel::Poisson { rate_rps: 5e5 },
//!     classes: Default::default(),
//!     batch: BatchPolicy { max_size: 4, timeout_ns: 10_000 },
//!     queue_capacity: 64,
//!     deadline_ns: 0,
//!     duration_ns: 10_000_000,
//!     seed: 7,
//! };
//! let lc = LifecycleConfig {
//!     strategy: UpdateStrategy::Drained,
//!     plan: UpdatePlan::uniform(2, 16),
//!     update_interval_ns: 2_000_000,
//!     updates: 4,
//!     budget: 1_000_000,
//!     ..LifecycleConfig::none(2)
//! };
//! let report = simulate_lifecycle(&profile, &cfg, &lc).unwrap();
//! assert_eq!(report.updates_applied, 8); // 4 updates × 2 stages
//! assert!(report.availability <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod report;
pub mod sched;

pub use plan::{DutyCycle, RotateThreshold, UpdatePlan, UpdateStrategy, WriteCost};
pub use report::{LifecycleReport, RotationRecord, UpdateRecord};
pub use sched::{
    run_lifecycle_sweep, simulate_lifecycle, LifecycleCell, LifecycleConfig, LifecyclePoint,
};

/// Schema tag of the lifecycle NDJSON report emitted by the `lifecycle`
/// bench binary (one strategy × update-count grid point per line).
pub const LIFECYCLE_SCHEMA: &str = "sei-lifecycle-report/v1";
