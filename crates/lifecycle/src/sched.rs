//! The write-pulse scheduler: reprogramming windows interleaved with a
//! live serving simulation.
//!
//! [`simulate_lifecycle`] opens a solo serving run through
//! [`sei_serve::SimDriver`] and merges two deterministic event streams
//! on the shared virtual clock: the simulation's own events, and the
//! lifecycle action heap (window begins/ends, ordered by `(time, seq)`
//! with lifecycle acting first on ties — the same tick-before-events
//! order the fleet autoscaler uses). Every scheduled update opens one
//! **window** per stage with nonzero planned rows; the strategy decides
//! what a window does to traffic:
//!
//! * **drained**, replication ≥ 2 — replicas are reprogrammed one at a
//!   time; the stage keeps serving on `r − 1` replicas at the exact
//!   autoscaler rescaling ([`scaled_service_ns`]) for the whole window
//!   (`rows × replication` sequential row writes), losing `1/r` of its
//!   capacity;
//! * **drained**, replication 1 — there is no second replica, so the
//!   window is an exclusive maintenance occupancy of the stage slot
//!   (upstream batches queue behind it exactly as behind a slow batch),
//!   losing the full stage for `rows` row-write latencies;
//! * **in-place** — row writes interleave with reads at duty cycle `d`:
//!   the stage never stops serving, reads slow by `1/(1 − d)`, and the
//!   window stretches to `rows × latency / d` (replicas are written in
//!   parallel, each interleaving its own copy).
//!
//! Windows on one stage never overlap: a window arriving while another
//! is active queues behind it (FIFO), so service rescaling composes
//! trivially and the wear accounting sees completions in a deterministic
//! order. At each window's completion the scheduler batches its
//! telemetry (one `writes` / `write_energy_fj` add per window, never per
//! pulse), charges the stage's tile in the [`WearLedger`], and — when
//! cumulative writes cross the rotation threshold — evacuates the tile
//! to the least-burdened free spare ([`TilePool::acquire`] is
//! burden-ordered), skipping the rotation if even the best spare is more
//! worn than the evacuee, and otherwise appending an evacuation-copy
//! window that rewrites the stage's planned rows on the new tile.
//!
//! Determinism: every quantity above is a function of `(profile, serve
//! config, lifecycle config)` on the integer virtual clock. With no
//! updates scheduled the action heap stays empty, the loop degenerates
//! to exactly the `simulate` event loop, and the serving report is
//! **byte-for-byte** the solo report.

use crate::plan::{DutyCycle, RotateThreshold, UpdatePlan, UpdateStrategy, WriteCost};
use crate::report::{LifecycleReport, RotationRecord, UpdateRecord};
use sei_engine::{Engine, SeiError};
use sei_faults::WearLedger;
use sei_serve::{scaled_service_ns, ServeConfig, ServiceProfile, SimDriver, TileHandle, TilePool};
use sei_telemetry::counters::{self, Event};
use sei_telemetry::trace;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of the lifecycle scheduler for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleConfig {
    /// How windows are applied to live stages.
    pub strategy: UpdateStrategy,
    /// Write-slot fraction of the in-place strategy (ignored by
    /// `drained`).
    pub duty: DutyCycle,
    /// Rows rewritten per stage (per replica) by each scheduled update.
    pub plan: UpdatePlan,
    /// Virtual time between scheduled updates; the first lands at this
    /// offset (ns).
    pub update_interval_ns: u64,
    /// Number of scheduled updates (0 = none: the run must reproduce
    /// the plain serving output byte-for-byte).
    pub updates: u32,
    /// Price of one row write–verify pass.
    pub write_cost: WriteCost,
    /// Per-tile endurance budget (row-write passes), e.g. from
    /// [`sei_faults::EnduranceModel::pulse_budget`].
    pub budget: u64,
    /// Wear fraction of the budget at which a tile is rotated out.
    pub rotate_threshold: RotateThreshold,
    /// Spare tiles available for rotation beyond the one-per-stage
    /// working set.
    pub spares: usize,
}

impl LifecycleConfig {
    /// A quiet configuration: no updates scheduled, defaults everywhere
    /// else. Useful as the baseline of a sweep.
    #[must_use]
    pub fn none(stages: usize) -> LifecycleConfig {
        LifecycleConfig {
            strategy: UpdateStrategy::Drained,
            duty: DutyCycle::new(0.2).expect("0.2 is a valid duty cycle"),
            plan: UpdatePlan::uniform(stages, 0),
            update_interval_ns: 1,
            updates: 0,
            write_cost: WriteCost::default(),
            budget: 1,
            rotate_threshold: RotateThreshold::default(),
            spares: 0,
        }
    }

    /// Validates the configuration against a profile's stage count.
    ///
    /// # Errors
    ///
    /// Returns [`SeiError::InvalidConfig`] when the plan's stage count
    /// does not match the profile, the update interval is zero while
    /// updates are scheduled, or the endurance budget is zero.
    pub fn validate(&self, stages: usize) -> Result<(), SeiError> {
        if self.budget == 0 {
            return Err(SeiError::invalid_config(
                "LifecycleConfig",
                "budget",
                "endurance budget must be positive",
            ));
        }
        if self.updates > 0 && !self.plan.is_empty() {
            if self.plan.stage_rows.len() != stages {
                return Err(SeiError::invalid_config(
                    "LifecycleConfig",
                    "plan.stage_rows",
                    format!(
                        "plan covers {} stages but the profile has {stages}",
                        self.plan.stage_rows.len()
                    ),
                ));
            }
            if self.update_interval_ns == 0 {
                return Err(SeiError::invalid_config(
                    "LifecycleConfig",
                    "update_interval_ns",
                    "must be positive when updates are scheduled",
                ));
            }
        }
        Ok(())
    }
}

/// One reprogramming window request: which stage, how many per-replica
/// rows, and whether it is a rotation's evacuation copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Window {
    stage: usize,
    rows: u64,
    index: u32,
    copy: bool,
}

/// A lifecycle action on the virtual clock. `Ord` by `(time, seq)` —
/// `seq` is unique per push, so heap order is total and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Action {
    time: u64,
    seq: u64,
    kind: ActionKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ActionKind {
    /// A window request lands on its stage's queue.
    Begin(Window),
    /// A non-maintenance window completes (maintenance completions are
    /// observed from the simulation's own event stream instead).
    End { stage: usize },
}

/// A window currently occupying a stage.
struct ActiveWindow {
    window: Window,
    /// For maintenance windows this is the *request* time; the actual
    /// start is derived from the completion time minus the duration.
    start_ns: u64,
    duration_ns: u64,
    capacity_loss: f64,
    /// Service time to restore at the end (drained-replica and in-place
    /// windows rescale the stage; maintenance occupancy does not).
    restore_service_ns: Option<f64>,
    maintenance: bool,
    physical_rows: u64,
}

struct LifecycleSim<'a, 'p> {
    driver: SimDriver<'p>,
    profile: &'p ServiceProfile,
    lc: &'a LifecycleConfig,
    horizon_ns: u64,
    heap: BinaryHeap<Reverse<Action>>,
    seq: u64,
    pending: Vec<VecDeque<Window>>,
    active: Vec<Option<ActiveWindow>>,
    maint_seen: Vec<u64>,
    pool: TilePool,
    stage_tiles: Vec<TileHandle>,
    ledger: WearLedger,
    trigger_writes: u64,
    updates_applied: u64,
    copies: u64,
    rotations_skipped: u64,
    total_writes: u64,
    write_energy_j: f64,
    maintenance_ns: u64,
    loss_ns: f64,
    records: Vec<UpdateRecord>,
    rotations: Vec<RotationRecord>,
}

impl<'a, 'p> LifecycleSim<'a, 'p> {
    fn new(
        driver: SimDriver<'p>,
        profile: &'p ServiceProfile,
        cfg: &ServeConfig,
        lc: &'a LifecycleConfig,
    ) -> LifecycleSim<'a, 'p> {
        let stages = profile.stages.len();
        let mut pool = TilePool::new(stages + lc.spares);
        let stage_tiles = pool
            .acquire(0, stages)
            .expect("pool sized to cover one tile per stage");
        LifecycleSim {
            driver,
            profile,
            lc,
            horizon_ns: cfg.duration_ns,
            heap: BinaryHeap::new(),
            seq: 0,
            pending: (0..stages).map(|_| VecDeque::new()).collect(),
            active: (0..stages).map(|_| None).collect(),
            maint_seen: vec![0; stages],
            pool,
            stage_tiles,
            ledger: WearLedger::new(stages + lc.spares, lc.budget),
            trigger_writes: lc.rotate_threshold.trigger_writes(lc.budget),
            updates_applied: 0,
            copies: 0,
            rotations_skipped: 0,
            total_writes: 0,
            write_energy_j: 0.0,
            maintenance_ns: 0,
            loss_ns: 0.0,
            records: Vec::new(),
            rotations: Vec::new(),
        }
    }

    fn push(&mut self, time: u64, kind: ActionKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Action { time, seq, kind }));
    }

    fn schedule_updates(&mut self) {
        if self.lc.plan.is_empty() {
            return;
        }
        for k in 1..=self.lc.updates {
            let time = u64::from(k).saturating_mul(self.lc.update_interval_ns);
            for (stage, &rows) in self.lc.plan.stage_rows.iter().enumerate() {
                if rows > 0 {
                    self.push(
                        time,
                        ActionKind::Begin(Window {
                            stage,
                            rows,
                            index: k,
                            copy: false,
                        }),
                    );
                }
            }
        }
    }

    /// Merge loop: lifecycle actions act first on virtual-time ties, so
    /// the interleaving (and thus every downstream byte) is a pure
    /// function of the configs. Windows finish even after traffic
    /// drains — reprogramming does not stop when arrivals do.
    fn run(&mut self) {
        self.schedule_updates();
        loop {
            let next_action = self.heap.peek().map(|Reverse(a)| a.time);
            match (next_action, self.driver.peek_time()) {
                (Some(ta), Some(te)) if ta <= te => self.next_action(),
                (Some(_), None) => self.next_action(),
                (_, Some(_)) => {
                    if let Some(t) = self.driver.step() {
                        self.poll_maintenance(t);
                    }
                }
                (None, None) => break,
            }
        }
    }

    fn next_action(&mut self) {
        let Reverse(action) = self.heap.pop().expect("peeked before pop");
        match action.kind {
            ActionKind::Begin(w) => {
                self.pending[w.stage].push_back(w);
                self.try_start(w.stage, action.time);
            }
            ActionKind::End { stage } => self.finish(stage, action.time),
        }
    }

    /// Starts the stage's next queued window if none is active.
    fn try_start(&mut self, stage: usize, now: u64) {
        if self.active[stage].is_some() {
            return;
        }
        let Some(w) = self.pending[stage].pop_front() else {
            return;
        };
        let r = self.profile.stages[stage].replication.max(1);
        let physical_rows = w.rows.saturating_mul(r as u64);
        let row_ns = self.lc.write_cost.row_latency_ns;
        let aw = match self.lc.strategy {
            UpdateStrategy::Drained if r >= 2 => {
                // Replicas reprogram one at a time; the survivors carry
                // the load at the autoscaler's exact (r − 1) rescaling.
                let duration_ns = physical_rows.saturating_mul(row_ns).max(1);
                let orig = self.driver.stage_service_ns(stage);
                self.driver.set_stage_service_ns(
                    stage,
                    scaled_service_ns(&self.profile.stages[stage], r - 1),
                );
                self.push(now.saturating_add(duration_ns), ActionKind::End { stage });
                ActiveWindow {
                    window: w,
                    start_ns: now,
                    duration_ns,
                    capacity_loss: 1.0 / r as f64,
                    restore_service_ns: Some(orig),
                    maintenance: false,
                    physical_rows,
                }
            }
            UpdateStrategy::Drained => {
                // Single replica: exclusive occupancy of the stage slot.
                // Completion arrives through the simulation's own event
                // stream (the start may wait behind an occupying batch).
                let duration_ns = physical_rows.saturating_mul(row_ns).max(1);
                self.driver.request_maintenance(stage, duration_ns, now);
                ActiveWindow {
                    window: w,
                    start_ns: now,
                    duration_ns,
                    capacity_loss: 1.0,
                    restore_service_ns: None,
                    maintenance: true,
                    physical_rows,
                }
            }
            UpdateStrategy::InPlace => {
                // Writes steal duty-cycle slots; replicas interleave
                // their own copies in parallel, so the wall time scales
                // with the per-replica rows.
                let d = self.lc.duty.fraction();
                let write_ns = w.rows.saturating_mul(row_ns);
                let duration_ns = ((write_ns as f64 / d).ceil() as u64).max(1);
                let orig = self.driver.stage_service_ns(stage);
                self.driver.set_stage_service_ns(stage, orig / (1.0 - d));
                self.push(now.saturating_add(duration_ns), ActionKind::End { stage });
                ActiveWindow {
                    window: w,
                    start_ns: now,
                    duration_ns,
                    capacity_loss: d,
                    restore_service_ns: Some(orig),
                    maintenance: false,
                    physical_rows,
                }
            }
        };
        self.active[stage] = Some(aw);
    }

    /// Detects drained-single-replica completions in the simulation's
    /// event stream after each step.
    fn poll_maintenance(&mut self, now: u64) {
        for stage in 0..self.maint_seen.len() {
            let done = self.driver.maintenance_completed(stage);
            if done > self.maint_seen[stage] {
                self.maint_seen[stage] = done;
                self.finish(stage, now);
            }
        }
    }

    /// Completes the active window on `stage`: restores service, charges
    /// wear and telemetry (one batched add per window), records the
    /// update, and checks rotation.
    fn finish(&mut self, stage: usize, now: u64) {
        let aw = self.active[stage]
            .take()
            .expect("window end without an active window");
        if let Some(orig) = aw.restore_service_ns {
            self.driver.set_stage_service_ns(stage, orig);
        }
        // A maintenance window runs contiguously for its whole duration
        // ending now; the other kinds started exactly at start_ns.
        let start_ns = if aw.maintenance {
            now.saturating_sub(aw.duration_ns)
        } else {
            aw.start_ns
        };
        let tile = self.stage_tiles[stage];
        self.ledger.record(tile.0 as usize, aw.physical_rows);
        self.pool.add_burden(tile, aw.physical_rows);
        let energy_j = aw.physical_rows as f64 * self.lc.write_cost.row_energy_j;
        counters::add(Event::Writes, aw.physical_rows);
        counters::add_write_energy_joules(energy_j);
        self.total_writes += aw.physical_rows;
        self.write_energy_j += energy_j;
        self.maintenance_ns += aw.duration_ns;
        let clipped_start = start_ns.min(self.horizon_ns);
        let clipped_end = now.min(self.horizon_ns);
        self.loss_ns += aw.capacity_loss * (clipped_end - clipped_start) as f64;
        if aw.window.copy {
            self.copies += 1;
        } else {
            self.updates_applied += 1;
        }
        self.records.push(UpdateRecord {
            stage,
            copy: aw.window.copy,
            index: aw.window.index,
            tile: tile.0,
            start_ns,
            end_ns: now,
            rows: aw.physical_rows,
            capacity_loss: aw.capacity_loss,
            energy_j,
        });
        // Scheduled updates check wear; evacuation copies never trigger
        // a further rotation (the copy's own wear is re-examined at the
        // stage's next scheduled update, which bounds the cascade).
        if !aw.window.copy && self.ledger.writes(tile.0 as usize) >= self.trigger_writes {
            self.try_rotate(stage, aw.window, now);
        }
        self.try_start(stage, now);
    }

    /// Evacuates `stage`'s tile to the least-burdened free spare, unless
    /// even that spare is more worn than the evacuee (then rotating
    /// would burn a healthier-than-nothing principle: skip and keep
    /// burning the current tile).
    fn try_rotate(&mut self, stage: usize, trigger: Window, now: u64) {
        let evacuee = self.stage_tiles[stage];
        let Some(candidates) = self.pool.acquire(0, 1) else {
            self.rotations_skipped += 1;
            return;
        };
        let target = candidates[0];
        if self.pool.burden(target) > self.pool.burden(evacuee) {
            self.pool.release(0, &candidates);
            self.rotations_skipped += 1;
            return;
        }
        self.rotations.push(RotationRecord {
            stage,
            at_ns: now,
            from_tile: evacuee.0,
            to_tile: target.0,
            from_writes: self.ledger.writes(evacuee.0 as usize),
            to_writes: self.ledger.writes(target.0 as usize),
        });
        self.stage_tiles[stage] = target;
        self.pool.release(0, &[evacuee]);
        // The new tile must be programmed with the stage's current
        // weights before it serves alone: append an evacuation copy of
        // the stage's planned row footprint, back-to-back.
        self.push(
            now,
            ActionKind::Begin(Window {
                stage,
                rows: trigger.rows,
                index: trigger.index,
                copy: true,
            }),
        );
    }

    fn into_report(self, strategy: UpdateStrategy, budget: u64) -> LifecycleReport {
        let availability = if self.horizon_ns == 0 {
            1.0
        } else {
            (1.0 - self.loss_ns / self.horizon_ns as f64).clamp(0.0, 1.0)
        };
        LifecycleReport {
            strategy: strategy.name().to_string(),
            updates_applied: self.updates_applied,
            copies: self.copies,
            rotations_done: self.rotations.len() as u64,
            rotations_skipped: self.rotations_skipped,
            total_writes: self.total_writes,
            write_energy_j: self.write_energy_j,
            maintenance_ns: self.maintenance_ns,
            availability,
            budget,
            wear: self.ledger.counts().to_vec(),
            updates: self.records,
            rotations: self.rotations,
            serve: self.driver.into_report(),
        }
    }
}

/// Runs one serving simulation with the lifecycle scheduler attached.
///
/// With `lc.updates == 0` (or an all-zero plan) the scheduler never
/// perturbs the run and the embedded serving report is byte-identical
/// to [`sei_serve::simulate`] on the same `(profile, cfg)`.
///
/// # Errors
///
/// Propagates serving-config validation errors and rejects inconsistent
/// lifecycle configurations (see [`LifecycleConfig::validate`]).
pub fn simulate_lifecycle(
    profile: &ServiceProfile,
    cfg: &ServeConfig,
    lc: &LifecycleConfig,
) -> Result<LifecycleReport, SeiError> {
    let _trace = trace::scope("lifecycle", || {
        format!(
            "simulate strategy={} updates={} rows={}",
            lc.strategy,
            lc.updates,
            lc.plan.total_rows()
        )
    });
    lc.validate(profile.stages.len())?;
    let driver = SimDriver::new(profile, cfg)?;
    let mut sim = LifecycleSim::new(driver, profile, cfg, lc);
    sim.run();
    Ok(sim.into_report(lc.strategy, lc.budget))
}

/// One grid point of a lifecycle sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleCell {
    /// Display label (strategy × update count, etc.).
    pub label: String,
    /// The mapped design under traffic.
    pub profile: ServiceProfile,
    /// The serving configuration.
    pub config: ServeConfig,
    /// The lifecycle schedule applied on top.
    pub lifecycle: LifecycleConfig,
}

/// A simulated lifecycle grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecyclePoint {
    /// The cell's display label.
    pub label: String,
    /// Its measurements.
    pub report: LifecycleReport,
}

/// Simulates every cell on the engine, returning points in cell order —
/// the reassembly is index-ordered, so the sweep (and any NDJSON
/// rendered from it) is byte-identical at any `SEI_THREADS`.
///
/// # Errors
///
/// All configurations are validated up front so a malformed grid fails
/// before any work is spawned.
pub fn run_lifecycle_sweep(
    engine: &Engine,
    cells: &[LifecycleCell],
) -> Result<Vec<LifecyclePoint>, SeiError> {
    for cell in cells {
        cell.config.validate()?;
        cell.lifecycle.validate(cell.profile.stages.len())?;
    }
    let reports: Vec<Result<LifecycleReport, SeiError>> = engine.map(cells, |cell| {
        simulate_lifecycle(&cell.profile, &cell.config, &cell.lifecycle)
    });
    cells
        .iter()
        .zip(reports)
        .map(|(cell, report)| {
            Ok(LifecyclePoint {
                label: cell.label.clone(),
                report: report?,
            })
        })
        .collect()
}
