//! What an update writes and what each row-write costs.
//!
//! An [`UpdatePlan`] names, per pipeline stage, how many crossbar rows a
//! weight update rewrites (a new fine-tune of one layer touches its own
//! rows only; a full redeploy rewrites every row). The [`WriteCost`]
//! prices one row write–verify pass from [`sei_cost::CostParams`] — the
//! snippet-derived `1.76e-4 s` / `6.76e-7 J` per-row constants — and the
//! strategy/knob newtypes ([`UpdateStrategy`], [`DutyCycle`],
//! [`RotateThreshold`]) parse strictly so a malformed `SEI_LIFECYCLE_*`
//! value is rejected with a clear message instead of silently defaulted.

use sei_cost::CostParams;
use std::fmt;
use std::str::FromStr;

/// How the scheduler applies a weight update to a live stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Quiesce one replica of the stage tile group at a time, reprogram
    /// it offline, rejoin it. The stage keeps serving on the remaining
    /// replicas at rescaled service time; an unreplicated stage has no
    /// remaining replica, so the whole stage blocks for the window.
    Drained,
    /// Interleave row write–verify pulses between reads at a configured
    /// duty cycle. The stage never stops serving, but every read during
    /// the window is slowed by the stolen write slots.
    InPlace,
}

impl UpdateStrategy {
    /// Stable lowercase name used in reports and knob values.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UpdateStrategy::Drained => "drained",
            UpdateStrategy::InPlace => "inplace",
        }
    }
}

impl fmt::Display for UpdateStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for UpdateStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<UpdateStrategy, String> {
        match s.trim() {
            "drained" => Ok(UpdateStrategy::Drained),
            "inplace" | "in-place" => Ok(UpdateStrategy::InPlace),
            other => Err(format!(
                "unknown update strategy {other:?} (expected `drained` or `inplace`)"
            )),
        }
    }
}

/// Fraction of a stage's time the in-place strategy steals for write
/// pulses. Strictly inside `(0, 1)`: zero would never finish a window
/// and one would starve reads entirely (that is what `drained` is for).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle(f64);

impl DutyCycle {
    /// A validated duty cycle.
    ///
    /// # Errors
    ///
    /// Rejects values outside the open interval `(0, 1)` and non-finite
    /// values.
    pub fn new(fraction: f64) -> Result<DutyCycle, String> {
        if fraction.is_finite() && fraction > 0.0 && fraction < 1.0 {
            Ok(DutyCycle(fraction))
        } else {
            Err(format!(
                "duty cycle must be a fraction strictly between 0 and 1, got {fraction}"
            ))
        }
    }

    /// The write-slot fraction.
    #[must_use]
    pub fn fraction(self) -> f64 {
        self.0
    }
}

impl FromStr for DutyCycle {
    type Err = String;

    fn from_str(s: &str) -> Result<DutyCycle, String> {
        let v: f64 = s
            .trim()
            .parse()
            .map_err(|_| format!("duty cycle must be a number, got {s:?}"))?;
        DutyCycle::new(v)
    }
}

/// Wear fraction of the endurance budget at which a stage's tile group
/// is rotated to a spare. In `(0, 1]`: one means "rotate only when the
/// budget is fully spent".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotateThreshold(f64);

impl RotateThreshold {
    /// A validated rotation threshold.
    ///
    /// # Errors
    ///
    /// Rejects values outside `(0, 1]` and non-finite values.
    pub fn new(fraction: f64) -> Result<RotateThreshold, String> {
        if fraction.is_finite() && fraction > 0.0 && fraction <= 1.0 {
            Ok(RotateThreshold(fraction))
        } else {
            Err(format!(
                "rotation threshold must be in (0, 1], got {fraction}"
            ))
        }
    }

    /// The wear fraction that triggers rotation.
    #[must_use]
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The write count on a tile at which rotation triggers, for a given
    /// per-tile budget (at least one write).
    #[must_use]
    pub fn trigger_writes(self, budget: u64) -> u64 {
        ((self.0 * budget as f64).ceil() as u64).max(1)
    }
}

impl Default for RotateThreshold {
    /// Rotate at 80 % of the endurance budget — early enough that the
    /// evacuation copy itself fits in the remaining headroom.
    fn default() -> RotateThreshold {
        RotateThreshold(0.8)
    }
}

impl FromStr for RotateThreshold {
    type Err = String;

    fn from_str(s: &str) -> Result<RotateThreshold, String> {
        let v: f64 = s
            .trim()
            .parse()
            .map_err(|_| format!("rotation threshold must be a number, got {s:?}"))?;
        RotateThreshold::new(v)
    }
}

/// Rows rewritten per pipeline stage by one weight update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePlan {
    /// Crossbar rows rewritten at stage `s` per update (per replica —
    /// the scheduler multiplies by the stage's replication, since every
    /// replica must carry the new weights).
    pub stage_rows: Vec<u64>,
}

impl UpdatePlan {
    /// A plan that rewrites the same `rows` on each of `stages` stages.
    #[must_use]
    pub fn uniform(stages: usize, rows: u64) -> UpdatePlan {
        UpdatePlan {
            stage_rows: vec![rows; stages],
        }
    }

    /// Total rows per update across stages (per replica).
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.stage_rows.iter().sum()
    }

    /// Whether the plan writes nothing (no stages, or all-zero rows).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stage_rows.iter().all(|&r| r == 0)
    }
}

/// Price of one crossbar row write–verify pass, on the simulation's
/// integer virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteCost {
    /// Latency of one row write–verify pass (ns, ≥ 1).
    pub row_latency_ns: u64,
    /// Energy of one row write–verify pass (J).
    pub row_energy_j: f64,
}

impl WriteCost {
    /// Prices a row write from the cost model's write constants
    /// ([`CostParams::row_write_latency_s`] /
    /// [`CostParams::row_write_energy`]), rounding the latency to the
    /// integer-nanosecond virtual clock (floored at 1 ns so a window
    /// always advances time).
    #[must_use]
    pub fn from_params(p: &CostParams) -> WriteCost {
        WriteCost {
            row_latency_ns: ((p.row_write_latency_s * 1e9).round() as u64).max(1),
            row_energy_j: p.row_write_energy,
        }
    }
}

impl Default for WriteCost {
    fn default() -> WriteCost {
        WriteCost::from_params(&CostParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parses_strictly() {
        assert_eq!(
            "drained".parse::<UpdateStrategy>(),
            Ok(UpdateStrategy::Drained)
        );
        assert_eq!(
            " inplace ".parse::<UpdateStrategy>(),
            Ok(UpdateStrategy::InPlace)
        );
        assert_eq!(
            "in-place".parse::<UpdateStrategy>(),
            Ok(UpdateStrategy::InPlace)
        );
        assert!("DRAINED".parse::<UpdateStrategy>().is_err());
        assert!("offline".parse::<UpdateStrategy>().is_err());
        assert_eq!(UpdateStrategy::Drained.to_string(), "drained");
        assert_eq!(UpdateStrategy::InPlace.to_string(), "inplace");
    }

    #[test]
    fn duty_cycle_bounds() {
        assert!(DutyCycle::new(0.5).is_ok());
        assert!(DutyCycle::new(0.0).is_err());
        assert!(DutyCycle::new(1.0).is_err());
        assert!(DutyCycle::new(f64::NAN).is_err());
        assert!("0.25".parse::<DutyCycle>().is_ok());
        assert!("zero".parse::<DutyCycle>().is_err());
    }

    #[test]
    fn rotate_threshold_bounds_and_trigger() {
        assert!(RotateThreshold::new(1.0).is_ok());
        assert!(RotateThreshold::new(0.0).is_err());
        assert!(RotateThreshold::new(1.1).is_err());
        let t = RotateThreshold::new(0.8).unwrap();
        assert_eq!(t.trigger_writes(100), 80);
        assert_eq!(t.trigger_writes(1), 1);
        // Ceil: 0.8 × 101 = 80.8 → 81, never rounding below the fraction.
        assert_eq!(t.trigger_writes(101), 81);
    }

    #[test]
    fn write_cost_matches_snippet_constants() {
        let c = WriteCost::default();
        // 1.76e-4 s → 176 000 ns exactly; reads are ~5 orders cheaper.
        assert_eq!(c.row_latency_ns, 176_000);
        assert!((c.row_energy_j - 6.76e-7).abs() < 1e-18);
    }

    #[test]
    fn plan_totals() {
        let p = UpdatePlan::uniform(3, 8);
        assert_eq!(p.total_rows(), 24);
        assert!(!p.is_empty());
        assert!(UpdatePlan::uniform(3, 0).is_empty());
        assert!(UpdatePlan { stage_rows: vec![] }.is_empty());
    }
}
