//! Lifecycle run measurements and their canonical NDJSON rendering.
//!
//! Every field is a pure function of `(profile, serve config, lifecycle
//! config)` on the virtual clock — no wall-clock times, no thread counts
//! — and [`LifecycleReport::to_json`] emits keys in one fixed order, so
//! a rendered report is byte-identical across `SEI_THREADS` /
//! `SEI_KERNELS` and can be pinned exactly by golden tests.

use sei_serve::ServeReport;
use sei_telemetry::json::Value;

/// One completed reprogramming window (a scheduled update on a stage, or
/// the evacuation copy a rotation appended).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRecord {
    /// Pipeline stage the window reprogrammed.
    pub stage: usize,
    /// Whether this window was a rotation's evacuation copy rather than
    /// a scheduled update.
    pub copy: bool,
    /// Index of the scheduled update that produced it (copies inherit
    /// the index of the update whose wear triggered the rotation).
    pub index: u32,
    /// Pool tile the writes landed on.
    pub tile: u32,
    /// Virtual time the window started occupying its stage (ns).
    pub start_ns: u64,
    /// Virtual time the window completed (ns).
    pub end_ns: u64,
    /// Physical row write–verify passes applied (per-replica rows ×
    /// replication).
    pub rows: u64,
    /// Serving capacity lost while the window ran: 1 for a full quiesce,
    /// `1/r` for one drained replica of `r`, the duty cycle in place.
    pub capacity_loss: f64,
    /// Write energy of the window (J).
    pub energy_j: f64,
}

impl UpdateRecord {
    /// Canonical JSON object (fixed key order).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("stage", Value::UInt(self.stage as u64));
        o.set("copy", Value::Bool(self.copy));
        o.set("index", Value::UInt(u64::from(self.index)));
        o.set("tile", Value::UInt(u64::from(self.tile)));
        o.set("start_ns", Value::UInt(self.start_ns));
        o.set("end_ns", Value::UInt(self.end_ns));
        o.set("rows", Value::UInt(self.rows));
        o.set("capacity_loss", Value::Float(self.capacity_loss));
        o.set("energy_j", Value::Float(self.energy_j));
        o
    }
}

/// One wear-triggered tile rotation: a stage's tile group evacuated to
/// the least-burdened spare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationRecord {
    /// Stage whose tile group moved.
    pub stage: usize,
    /// Virtual time of the rotation decision (ns).
    pub at_ns: u64,
    /// Tile evacuated (wear at or past the rotation threshold).
    pub from_tile: u32,
    /// Spare tile the stage moved onto.
    pub to_tile: u32,
    /// Cumulative writes on the evacuated tile at rotation time.
    pub from_writes: u64,
    /// Cumulative writes on the target tile at rotation time (never
    /// more than `from_writes` — the scheduler skips the rotation
    /// otherwise).
    pub to_writes: u64,
}

impl RotationRecord {
    /// Canonical JSON object (fixed key order).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("stage", Value::UInt(self.stage as u64));
        o.set("at_ns", Value::UInt(self.at_ns));
        o.set("from_tile", Value::UInt(u64::from(self.from_tile)));
        o.set("to_tile", Value::UInt(u64::from(self.to_tile)));
        o.set("from_writes", Value::UInt(self.from_writes));
        o.set("to_writes", Value::UInt(self.to_writes));
        o
    }
}

/// Measurements of one lifecycle run: the serving report of the
/// underlying simulation plus everything the reprogramming scheduler
/// did to it.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleReport {
    /// Update strategy name (`"drained"` / `"inplace"`).
    pub strategy: String,
    /// Scheduled (non-copy) windows completed.
    pub updates_applied: u64,
    /// Evacuation-copy windows completed.
    pub copies: u64,
    /// Rotations performed.
    pub rotations_done: u64,
    /// Rotations skipped because no spare had burden at or below the
    /// evacuee's (or no spare was free).
    pub rotations_skipped: u64,
    /// Physical row write–verify passes across all windows.
    pub total_writes: u64,
    /// Write energy across all windows (J).
    pub write_energy_j: f64,
    /// Summed window durations (ns) — reprogramming occupancy, whatever
    /// the strategy.
    pub maintenance_ns: u64,
    /// Capacity-weighted serving availability over the arrival horizon:
    /// `1 − Σ(capacity_loss × window ∩ horizon) / horizon`, clamped to
    /// `[0, 1]`.
    pub availability: f64,
    /// Per-tile endurance budget the wear accounting ran against.
    pub budget: u64,
    /// Cumulative writes per pool tile (stage tiles then spares).
    pub wear: Vec<u64>,
    /// Every completed window, in completion order.
    pub updates: Vec<UpdateRecord>,
    /// Every rotation, in decision order.
    pub rotations: Vec<RotationRecord>,
    /// The underlying serving run (schema-identical to the solo serve
    /// path; byte-equal to it when no update was scheduled).
    pub serve: ServeReport,
}

impl LifecycleReport {
    /// Canonical JSON object (fixed key order).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("strategy", Value::Str(self.strategy.clone()));
        o.set("updates_applied", Value::UInt(self.updates_applied));
        o.set("copies", Value::UInt(self.copies));
        o.set("rotations_done", Value::UInt(self.rotations_done));
        o.set("rotations_skipped", Value::UInt(self.rotations_skipped));
        o.set("total_writes", Value::UInt(self.total_writes));
        o.set("write_energy_j", Value::Float(self.write_energy_j));
        o.set("maintenance_ns", Value::UInt(self.maintenance_ns));
        o.set("availability", Value::Float(self.availability));
        o.set("budget", Value::UInt(self.budget));
        o.set(
            "wear",
            Value::Arr(self.wear.iter().map(|&w| Value::UInt(w)).collect()),
        );
        o.set(
            "updates",
            Value::Arr(self.updates.iter().map(UpdateRecord::to_json).collect()),
        );
        o.set(
            "rotations",
            Value::Arr(self.rotations.iter().map(RotationRecord::to_json).collect()),
        );
        o.set("serve", self.serve.to_json());
        o
    }
}
