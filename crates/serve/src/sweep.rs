//! Saturation sweeps: a grid of serving simulations fanned out over the
//! deterministic engine.
//!
//! Each [`SweepCell`] is one independent simulation (offered load ×
//! batch size × replication, each with its own [`ServiceProfile`] since
//! replication changes the stage service times). Cells are simulated via
//! [`sei_engine::Engine::map_indexed`], which reassembles results in cell
//! order regardless of the thread count — so a sweep's output (and the
//! NDJSON the `serve` binary renders from it) is byte-identical at any
//! `SEI_THREADS`.

use crate::metrics::ServeReport;
use crate::profile::ServiceProfile;
use crate::sim::{simulate, ServeConfig};
use sei_engine::{Engine, SeiError};
use serde::{Deserialize, Serialize};

/// One grid point of a saturation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Offered load as a fraction of the profile's saturation throughput
    /// (recorded for reporting; the absolute rate lives in `config`).
    pub load_fraction: f64,
    /// Batch-former size limit (mirrors `config.batch.max_size`).
    pub batch_max: usize,
    /// Crossbar replication factor behind `profile`.
    pub replication: usize,
    /// The mapped design at this replication.
    pub profile: ServiceProfile,
    /// The serving configuration to simulate.
    pub config: ServeConfig,
}

/// A simulated grid point: the cell's coordinates plus its measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load as a fraction of saturation.
    pub load_fraction: f64,
    /// Batch-former size limit.
    pub batch_max: usize,
    /// Crossbar replication factor.
    pub replication: usize,
    /// Saturation throughput of the cell's profile (inferences/s).
    pub saturation_rps: f64,
    /// The run's measurements.
    pub report: ServeReport,
}

/// Simulates every cell on the engine and returns points in cell order.
///
/// All configurations are validated up front so a malformed grid fails
/// before any work is spawned.
pub fn run_sweep(engine: &Engine, cells: &[SweepCell]) -> Result<Vec<SweepPoint>, SeiError> {
    for cell in cells {
        cell.config.validate()?;
    }
    let reports: Vec<Result<ServeReport, SeiError>> =
        engine.map(cells, |cell| simulate(&cell.profile, &cell.config));
    cells
        .iter()
        .zip(reports)
        .map(|(cell, report)| {
            Ok(SweepPoint {
                load_fraction: cell.load_fraction,
                batch_max: cell.batch_max,
                replication: cell.replication,
                saturation_rps: cell.profile.max_throughput_rps(),
                report: report?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadModel;
    use crate::profile::StageProfile;
    use crate::sim::BatchPolicy;

    fn cells() -> Vec<SweepCell> {
        let mut out = Vec::new();
        for &load in &[0.5f64, 0.9, 1.5] {
            for &batch in &[1usize, 8] {
                let profile = ServiceProfile::new(
                    vec![
                        StageProfile::new("conv1", 800.0),
                        StageProfile::new("fc", 200.0),
                    ],
                    1e-6,
                );
                let config = ServeConfig {
                    load: LoadModel::Poisson {
                        rate_rps: load * profile.max_throughput_rps(),
                    },
                    classes: Default::default(),
                    batch: BatchPolicy {
                        max_size: batch,
                        timeout_ns: 10_000,
                    },
                    queue_capacity: 64,
                    deadline_ns: 0,
                    duration_ns: 5_000_000,
                    seed: 5,
                };
                out.push(SweepCell {
                    load_fraction: load,
                    batch_max: batch,
                    replication: 1,
                    profile,
                    config,
                });
            }
        }
        out
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let grid = cells();
        let reference = run_sweep(&Engine::single(), &grid).unwrap();
        for threads in [2, 7] {
            let got = run_sweep(&Engine::new(threads), &grid).unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
        assert_eq!(reference.len(), grid.len());
    }

    #[test]
    fn sweep_rejects_bad_cell_before_running() {
        let mut grid = cells();
        grid[2].config.queue_capacity = 0;
        assert!(run_sweep(&Engine::single(), &grid).is_err());
    }

    #[test]
    fn overloaded_cells_shed_and_loaded_cells_queue() {
        let points = run_sweep(&Engine::single(), &cells()).unwrap();
        let p = |load: f64, batch: usize| -> &SweepPoint {
            points
                .iter()
                .find(|p| p.load_fraction == load && p.batch_max == batch)
                .unwrap()
        };
        assert_eq!(p(0.5, 8).report.shed(), 0);
        assert!(p(1.5, 8).report.shed() > 0);
        assert!(p(1.5, 8).report.latency.p99_ns > p(0.5, 8).report.latency.p99_ns);
    }
}
