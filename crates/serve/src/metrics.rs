//! Measurement layer: what one serving run produced.
//!
//! All quantities are functions of the virtual clock, so they are exactly
//! reproducible: latency percentiles are nearest-rank over the sorted
//! completion latencies, queue depth is tracked as a peak plus a
//! time-weighted mean, and stage occupancy is busy-time over run time.
//! [`ServeReport::to_json`] renders the run as one insertion-ordered
//! [`Value`] object for the `sei-serve-report/v1` NDJSON rows.

use sei_telemetry::hist::Histogram;
use sei_telemetry::json::Value;
use serde::{Deserialize, Serialize};

/// Nearest-rank latency percentiles (virtual ns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Completed-request count the stats are over.
    pub count: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Worst observed latency (ns).
    pub max_ns: u64,
}

impl LatencyStats {
    /// Computes the stats, sorting `latencies` in place. Empty input
    /// yields all-zero stats.
    pub fn compute(latencies: &mut [u64]) -> LatencyStats {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        latencies.sort_unstable();
        let n = latencies.len();
        let rank = |p: f64| -> u64 {
            let idx = ((p / 100.0) * n as f64).ceil() as usize;
            latencies[idx.clamp(1, n) - 1]
        };
        LatencyStats {
            count: n as u64,
            mean_ns: latencies.iter().map(|&l| l as f64).sum::<f64>() / n as f64,
            p50_ns: rank(50.0),
            p95_ns: rank(95.0),
            p99_ns: rank(99.0),
            max_ns: latencies[n - 1],
        }
    }
}

/// Per-request-class measurements of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStat {
    /// Class name (from the configured [`crate::load::ClassMix`]).
    pub name: String,
    /// Arrivals assigned to this class.
    pub arrivals: u64,
    /// Arrivals of this class shed (backpressure + deadline).
    pub shed: u64,
    /// Completions of this class.
    pub completed: u64,
    /// Exact nearest-rank latency percentiles over this class's
    /// completions.
    pub latency: LatencyStats,
}

/// Byte-stable rendering of a [`Histogram`]: count, log-bucket
/// percentiles, and the sparse non-empty buckets as `(lower bound,
/// count)` pairs. Rebuilding a histogram from `buckets` reproduces the
/// same buckets and quantiles, so the summary is lossless at bucket
/// resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HistSummary {
    /// Recorded samples.
    pub count: u64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 95th percentile (bucket lower bound).
    pub p95: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
    /// `(bucket lower bound, count)` for every non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn from_hist(h: &Histogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            buckets: h.nonzero_buckets(),
        }
    }

    /// Renders the summary as an insertion-ordered JSON object with
    /// `buckets` as an array of `[lower_bound, count]` pairs.
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("count", Value::UInt(self.count));
        o.set("p50", Value::UInt(self.p50));
        o.set("p95", Value::UInt(self.p95));
        o.set("p99", Value::UInt(self.p99));
        let buckets = self
            .buckets
            .iter()
            .map(|&(lo, n)| Value::Arr(vec![Value::UInt(lo), Value::UInt(n)]))
            .collect();
        o.set("buckets", Value::Arr(buckets));
        o
    }
}

/// Utilization of one pipeline stage over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Stage (layer) name.
    pub name: String,
    /// Total busy time (virtual ns).
    pub busy_ns: u64,
    /// Busy time over run time, in `[0, 1]`.
    pub occupancy: f64,
    /// Crossbar replication factor behind the stage.
    #[serde(default)]
    pub replication: u64,
    /// Crossbar reads performed by this stage over the run (per-inference
    /// reads × completions).
    #[serde(default)]
    pub reads: u64,
    /// Energy attributed to this stage over the run (J).
    #[serde(default)]
    pub energy_j: f64,
}

/// Everything one serving simulation measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Mean offered load (requests/s).
    pub offered_rps: f64,
    /// Arrival horizon of the run (virtual ns); the run itself extends
    /// past this until the pipeline drains.
    pub duration_ns: u64,
    /// Virtual time of the last event processed (≥ `duration_ns`).
    pub end_ns: u64,
    /// Requests generated by the load model.
    pub arrivals: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests shed because the admission queue was full (backpressure).
    pub shed_full: u64,
    /// Requests shed because their deadline was predicted unmeetable.
    pub shed_deadline: u64,
    /// Requests that completed inference.
    pub completed: u64,
    /// Completions that traversed at least one fault-degraded stage tile.
    pub degraded: u64,
    /// Batches dispatched onto the pipeline.
    pub batches: u64,
    /// Mean formed-batch size.
    pub mean_batch: f64,
    /// Completion-latency percentiles.
    pub latency: LatencyStats,
    /// Peak admission-queue depth.
    pub peak_queue_depth: u64,
    /// Time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Per-stage utilization and run-level read/energy attribution.
    pub stages: Vec<StageStat>,
    /// Per-request-class arrivals/shed/completions and exact latency
    /// percentiles, in mix declaration order.
    #[serde(default)]
    pub classes: Vec<ClassStat>,
    /// Log-bucket completion-latency histogram (ns).
    #[serde(default)]
    pub latency_hist: HistSummary,
    /// Log-bucket formed-batch-size histogram.
    #[serde(default)]
    pub batch_hist: HistSummary,
    /// Total inference energy spent (J): completions × energy/inference.
    pub energy_j: f64,
    /// Goodput: completions per second of virtual run time.
    pub throughput_rps: f64,
}

impl ServeReport {
    /// Total requests shed (backpressure + deadline).
    pub fn shed(&self) -> u64 {
        self.shed_full + self.shed_deadline
    }

    /// Shed fraction of all arrivals (0 when nothing arrived).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed() as f64 / self.arrivals as f64
        }
    }

    /// Energy per completed inference (J); 0 when nothing completed.
    pub fn energy_per_inference_j(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.energy_j / self.completed as f64
        }
    }

    /// Renders the report as one insertion-ordered JSON object (an NDJSON
    /// sweep row). Key order is fixed, and every value is a pure function
    /// of the virtual clock, so the rendering is byte-stable.
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("offered_rps", Value::Float(self.offered_rps));
        o.set("duration_ns", Value::UInt(self.duration_ns));
        o.set("end_ns", Value::UInt(self.end_ns));
        o.set("arrivals", Value::UInt(self.arrivals));
        o.set("admitted", Value::UInt(self.admitted));
        o.set("shed_full", Value::UInt(self.shed_full));
        o.set("shed_deadline", Value::UInt(self.shed_deadline));
        o.set("shed_rate", Value::Float(self.shed_rate()));
        o.set("completed", Value::UInt(self.completed));
        o.set("degraded", Value::UInt(self.degraded));
        o.set("batches", Value::UInt(self.batches));
        o.set("mean_batch", Value::Float(self.mean_batch));
        o.set("p50_ns", Value::UInt(self.latency.p50_ns));
        o.set("p95_ns", Value::UInt(self.latency.p95_ns));
        o.set("p99_ns", Value::UInt(self.latency.p99_ns));
        o.set("max_ns", Value::UInt(self.latency.max_ns));
        o.set("mean_latency_ns", Value::Float(self.latency.mean_ns));
        o.set("peak_queue_depth", Value::UInt(self.peak_queue_depth));
        o.set("mean_queue_depth", Value::Float(self.mean_queue_depth));
        o.set("throughput_rps", Value::Float(self.throughput_rps));
        o.set("energy_j", Value::Float(self.energy_j));
        o.set(
            "energy_per_inference_j",
            Value::Float(self.energy_per_inference_j()),
        );
        let stages = self
            .stages
            .iter()
            .map(|s| {
                let mut so = Value::obj();
                so.set("name", Value::Str(s.name.clone()));
                so.set("busy_ns", Value::UInt(s.busy_ns));
                so.set("occupancy", Value::Float(s.occupancy));
                so.set("replication", Value::UInt(s.replication));
                so.set("reads", Value::UInt(s.reads));
                so.set("energy_j", Value::Float(s.energy_j));
                so
            })
            .collect();
        o.set("stages", Value::Arr(stages));
        let classes = self
            .classes
            .iter()
            .map(|c| {
                let mut co = Value::obj();
                co.set("name", Value::Str(c.name.clone()));
                co.set("arrivals", Value::UInt(c.arrivals));
                co.set("shed", Value::UInt(c.shed));
                co.set("completed", Value::UInt(c.completed));
                co.set("p50_ns", Value::UInt(c.latency.p50_ns));
                co.set("p95_ns", Value::UInt(c.latency.p95_ns));
                co.set("p99_ns", Value::UInt(c.latency.p99_ns));
                co.set("max_ns", Value::UInt(c.latency.max_ns));
                co.set("mean_latency_ns", Value::Float(c.latency.mean_ns));
                co
            })
            .collect();
        o.set("classes", Value::Arr(classes));
        o.set("latency_hist", self.latency_hist.to_json());
        o.set("batch_hist", self.batch_hist.to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut lat: Vec<u64> = (1..=100).collect();
        let s = LatencyStats::compute(&mut lat);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn singleton_and_empty_latencies() {
        let mut one = vec![42u64];
        let s = LatencyStats::compute(&mut one);
        assert_eq!((s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns), (42, 42, 42, 42));
        let s = LatencyStats::compute(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn report_json_is_stable() {
        let report = ServeReport {
            offered_rps: 1000.0,
            duration_ns: 1_000_000,
            end_ns: 1_100_000,
            arrivals: 10,
            admitted: 9,
            shed_full: 1,
            shed_deadline: 0,
            completed: 9,
            degraded: 0,
            batches: 3,
            mean_batch: 3.0,
            latency: LatencyStats::default(),
            peak_queue_depth: 4,
            mean_queue_depth: 1.5,
            stages: vec![StageStat {
                name: "conv1".into(),
                busy_ns: 900_000,
                occupancy: 0.9,
                replication: 2,
                reads: 1800,
                energy_j: 4e-6,
            }],
            classes: vec![ClassStat {
                name: "all".into(),
                arrivals: 10,
                shed: 1,
                completed: 9,
                latency: LatencyStats::default(),
            }],
            latency_hist: HistSummary::default(),
            batch_hist: HistSummary::default(),
            energy_j: 9e-6,
            throughput_rps: 8181.8,
        };
        let a = report.to_json().to_json();
        let b = report.to_json().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"shed_full\":1"), "{a}");
        assert!(a.contains("\"peak_queue_depth\":4"), "{a}");
        assert!(a.contains("\"replication\":2"), "{a}");
        assert!(a.contains("\"classes\":[{\"name\":\"all\""), "{a}");
        assert!(a.contains("\"latency_hist\":{\"count\":0"), "{a}");
        assert!((report.shed_rate() - 0.1).abs() < 1e-12);
        assert!((report.energy_per_inference_j() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn hist_summary_is_lossless_at_bucket_resolution() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 90, 1200, 1200, 1200, 700_000] {
            h.record(v);
        }
        let s = HistSummary::from_hist(&h);
        assert_eq!(s.count, 7);
        let mut rebuilt = Histogram::new();
        for &(lo, n) in &s.buckets {
            rebuilt.record_n(lo, n);
        }
        let r = HistSummary::from_hist(&rebuilt);
        assert_eq!((r.p50, r.p95, r.p99), (s.p50, s.p95, s.p99));
        let json = s.to_json().to_json();
        assert!(json.starts_with("{\"count\":7,\"p50\":"), "{json}");
        assert!(json.contains("\"buckets\":[["), "{json}");
    }
}
