//! `sei-serve` — batched inference serving on the mapped SEI accelerator.
//!
//! The paper evaluates energy *per picture* in isolation; this crate asks
//! what the accelerator does under *traffic*. It is a deterministic
//! discrete-event simulation of an inference service with three layers:
//!
//! * a **request front-end** ([`load`], [`sim`]) — a seeded Poisson or
//!   bursty load generator, a bounded admission queue with deadline-aware
//!   load shedding and backpressure, and a batch former with size/timeout
//!   policies;
//! * a **tile scheduler** ([`sim`], [`profile`]) — batches flow through
//!   the replicated layer-pipeline stages of a mapped design, whose
//!   per-stage service times come from [`sei_mapping::timing`] and whose
//!   per-inference energy comes from [`sei_cost`]; a stage tile carrying a
//!   [`sei_faults::FaultMap`] serves at reduced accuracy (degraded
//!   completions are counted separately);
//! * a **measurement layer** ([`metrics`]) — virtual-clock latency
//!   percentiles (globally, per request class of a seeded [`ClassMix`],
//!   and as log-bucket [`sei_telemetry::hist`] histograms), queue-depth
//!   and stage-occupancy traces with per-stage read/energy attribution,
//!   and shed/admit counters wired into the [`sei_telemetry`] counter
//!   registry (`requests_admitted`, `requests_shed`, `batches_formed`,
//!   `queue_depth_peak`).
//!
//! Everything runs on a virtual clock (integer nanoseconds) with
//! splitmix64-derived randomness ([`sei_faults::mix`]), so a `(profile,
//! config)` pair always produces bit-identical results; [`sweep`] fans a
//! grid of simulations out over [`sei_engine::Engine`], and because each
//! grid cell is simulated independently and results are reassembled in
//! index order, a saturation sweep is byte-identical at any `SEI_THREADS`.
//!
//! # Example
//!
//! Serve a three-stage pipeline at 80 % of its saturation throughput:
//!
//! ```
//! use sei_serve::load::LoadModel;
//! use sei_serve::profile::{ServiceProfile, StageProfile};
//! use sei_serve::sim::{simulate, BatchPolicy, ServeConfig};
//!
//! let profile = ServiceProfile::new(
//!     vec![
//!         StageProfile::new("conv1", 1000.0),
//!         StageProfile::new("conv2", 400.0),
//!         StageProfile::new("fc", 100.0),
//!     ],
//!     2.5e-6,
//! );
//! let cfg = ServeConfig {
//!     load: LoadModel::Poisson {
//!         rate_rps: 0.8 * profile.max_throughput_rps(),
//!     },
//!     classes: Default::default(),
//!     batch: BatchPolicy { max_size: 4, timeout_ns: 10_000 },
//!     queue_capacity: 64,
//!     deadline_ns: 0,
//!     duration_ns: 10_000_000,
//!     seed: 7,
//! };
//! let report = simulate(&profile, &cfg).unwrap();
//! assert!(report.completed > 0);
//! assert_eq!(report.shed(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod load;
pub mod metrics;
pub mod profile;
pub mod sim;
pub mod sweep;

pub use fleet::{
    run_fleet_sweep, scaled_service_ns, simulate_fleet, tenant_load_model, AutoscalePolicy,
    FleetCell, FleetClassStat, FleetConfig, FleetMix, FleetPoint, FleetReport, FleetTenantArg,
    TenantReport, TenantSpec, TileHandle, TilePool,
};
pub use load::{ClassMix, ClassSpec, LoadModel};
pub use metrics::{ClassStat, HistSummary, LatencyStats, ServeReport, StageStat};
pub use profile::{ServiceProfile, StageFault, StageProfile};
pub use sim::{simulate, BatchPolicy, ServeConfig, SimDriver};
pub use sweep::{run_sweep, SweepCell, SweepPoint};

/// Schema tag of the serving-layer NDJSON report emitted by the `serve`
/// bench binary (one saturation sweep per line).
pub const SERVE_SCHEMA: &str = "sei-serve-report/v1";

/// Schema tag of the fleet-scheduler NDJSON report (one multi-tenant
/// sweep point per line).
pub const FLEET_SCHEMA: &str = "sei-serve-fleet/v1";
