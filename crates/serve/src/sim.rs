//! The discrete-event serving simulation: admission, batching, and the
//! batch pipeline over the mapped design's layer stages.
//!
//! # Model
//!
//! Requests arrive per the seeded [`LoadModel`] and pass an **admission
//! control** check: a full bounded queue sheds the request outright
//! (backpressure), and when a deadline is configured, a request whose
//! predicted completion time — queue depth plus in-flight work times the
//! bottleneck stage service, plus one pipeline traversal — exceeds the
//! deadline is shed at the door rather than wasting queue space and
//! crossbar energy on a picture nobody will wait for.
//!
//! A **batch former** dispatches the head of the queue onto the pipeline
//! whenever the first stage is idle and either `max_size` requests are
//! waiting or the oldest has waited `timeout_ns`. A batch of `B`
//! inferences occupies stage `s` for `B × service_ns(s)`: within a stage
//! the replicated crossbar tiles process the batch back-to-back, while
//! different stages work on different batches concurrently — so
//! steady-state throughput is bounded by the slowest stage exactly as
//! [`sei_mapping::timing::DesignTiming::throughput_pps`] predicts, and a
//! finished batch blocks in place when its downstream stage is still busy
//! (head-of-line pipeline blocking).
//!
//! # Determinism
//!
//! The simulation runs on an integer virtual clock. Events are ordered by
//! `(time, push sequence)`, arrivals come from the stateless splitmix64
//! stream, and no wall-clock or thread-dependent quantity enters the
//! state, so `simulate` is a pure function of `(profile, config)`.
//!
//! # Relation to the batched read path
//!
//! This simulator models *timing* only — no crossbar reads happen here,
//! so its NDJSON output is invariant to the `SEI_KERNELS` backend by
//! construction. The functional counterpart of the batch former is
//! `CrossbarNetwork::classify_batch_scratch` in `sei-core`: because read
//! noise is a pure function of `(seed, tile, image index, read)`, a
//! batch former may group requests any way it likes without changing any
//! prediction — the accuracy and timing models stay independently
//! composable.

use crate::load::{ArrivalGen, ClassMix, LoadModel};
use crate::metrics::{ClassStat, HistSummary, LatencyStats, ServeReport, StageStat};
use crate::profile::ServiceProfile;
use sei_engine::SeiError;
use sei_telemetry::counters::{self, Event};
use sei_telemetry::hist::Histogram;
use sei_telemetry::trace;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Batch-formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are queued.
    pub max_size: usize,
    /// …or once the oldest queued request has waited this long (ns).
    pub timeout_ns: u64,
}

/// Configuration of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Offered-load model.
    pub load: LoadModel,
    /// Request-class mix; arrivals are assigned classes by a stateless
    /// seeded draw and reported per class. Defaults to one class `all`.
    #[serde(default)]
    pub classes: ClassMix,
    /// Batch-formation policy.
    pub batch: BatchPolicy,
    /// Admission-queue capacity (requests beyond it are shed).
    pub queue_capacity: usize,
    /// End-to-end latency deadline (ns); `0` disables deadline shedding.
    pub deadline_ns: u64,
    /// Arrival horizon (virtual ns): requests arrive in `[0,
    /// duration_ns]`, then the pipeline drains.
    pub duration_ns: u64,
    /// Seed of the arrival process.
    pub seed: u64,
}

impl ServeConfig {
    /// Checks the configuration, in the workspace's strict-config style.
    pub fn validate(&self) -> Result<(), SeiError> {
        if self.batch.max_size == 0 {
            return Err(SeiError::invalid_config(
                "ServeConfig",
                "batch.max_size",
                "must be at least 1",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(SeiError::invalid_config(
                "ServeConfig",
                "queue_capacity",
                "must be at least 1",
            ));
        }
        if self.duration_ns == 0 {
            return Err(SeiError::invalid_config(
                "ServeConfig",
                "duration_ns",
                "must be positive",
            ));
        }
        if let Err(msg) = self.classes.check() {
            return Err(SeiError::invalid_config("ServeConfig", "classes", msg));
        }
        let min_rate = self.load.min_rps();
        if !(min_rate > 0.0 && min_rate.is_finite()) {
            return Err(SeiError::invalid_config(
                "ServeConfig",
                "load",
                format!("arrival rate must be positive and finite, got {min_rate}"),
            ));
        }
        if let LoadModel::Burst {
            period_ns,
            burst_fraction,
            ..
        } = self.load
        {
            if period_ns == 0 {
                return Err(SeiError::invalid_config(
                    "ServeConfig",
                    "load.period_ns",
                    "must be positive",
                ));
            }
            if !(0.0..=1.0).contains(&burst_fraction) {
                return Err(SeiError::invalid_config(
                    "ServeConfig",
                    "load.burst_fraction",
                    format!("must be in [0, 1], got {burst_fraction}"),
                ));
            }
        }
        Ok(())
    }
}

pub(crate) fn validate_profile(profile: &ServiceProfile) -> Result<(), SeiError> {
    if profile.stages.is_empty() {
        return Err(SeiError::invalid_config(
            "ServiceProfile",
            "stages",
            "must have at least one pipeline stage",
        ));
    }
    for s in &profile.stages {
        if !(s.service_ns > 0.0 && s.service_ns.is_finite()) {
            return Err(SeiError::invalid_config(
                "ServiceProfile",
                "stages.service_ns",
                format!(
                    "stage {:?} service time must be positive, got {}",
                    s.name, s.service_ns
                ),
            ));
        }
    }
    Ok(())
}

/// Event kinds, encoded as an ordered integer so heap entries are plain
/// `(time, seq, code)` tuples: `0` arrival, `1` batch timer, `2 + s`
/// stage-`s` completion, and `2 + n + s` (for an `n`-stage profile)
/// completion of a maintenance window occupying stage `s` (lifecycle
/// reprogramming; see [`SimDriver::request_maintenance`]).
pub(crate) const EV_ARRIVAL: u64 = 0;
const EV_TIMER: u64 = 1;
const EV_STAGE_BASE: u64 = 2;

/// Outcome of the admission decision for one arrival. The fleet layer
/// ([`crate::fleet`]) computes extra shed reasons (token-bucket rate
/// limiting, shared-pool overload) but funnels them all through
/// [`Sim::finish_arrival`] so per-tenant accounting stays identical to
/// the solo path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitDecision {
    /// Enqueue the request.
    Admit,
    /// Shed: queue full (or a fleet-level backpressure reason — rate
    /// limit, shared-pool overload — which the fleet reports separately
    /// but which counts as backpressure here).
    ShedFull,
    /// Shed: predicted completion misses the configured deadline.
    ShedDeadline,
}

/// A batch in flight: the `(arrival time, class)` of its requests plus
/// whether it has traversed any fault-degraded stage so far.
struct Batch {
    arrivals: Vec<(u64, u16)>,
    degraded: bool,
}

#[derive(Default)]
struct Slot {
    batch: Option<Batch>,
    done: bool,
}

/// One tenant's simulation state. Private to the crate: [`simulate`]
/// drives it solo; [`crate::fleet`] drives several at once by merging
/// their event heaps on `(time, tenant index, seq)`, which for a single
/// tenant reduces exactly to the solo `(time, seq)` order — the basis of
/// the degenerate byte-equality guarantee.
pub(crate) struct Sim<'a> {
    profile: &'a ServiceProfile,
    cfg: &'a ServeConfig,
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    seq: u64,
    gen: ArrivalGen,
    pub(crate) queue: VecDeque<(u64, u16)>,
    slots: Vec<Slot>,
    busy_ns: Vec<u64>,
    /// Effective per-stage service time (ns). Seeded from the profile;
    /// the fleet's autoscaler rescales it when replication changes.
    stage_service_ns: Vec<f64>,
    pub(crate) inflight: u64,
    // measurement
    pub(crate) arrivals: u64,
    pub(crate) admitted: u64,
    pub(crate) shed_full: u64,
    pub(crate) shed_deadline: u64,
    pub(crate) completed: u64,
    degraded: u64,
    batches: u64,
    batch_items: u64,
    pub(crate) latencies: Vec<u64>,
    // lifecycle maintenance (all empty/false unless a `SimDriver` caller
    // requests windows — the no-update path never touches them)
    maint_active: Vec<bool>,
    maint_pending: Vec<VecDeque<u64>>,
    maint_busy_ns: Vec<u64>,
    maint_done: Vec<u64>,
    peak_depth: u64,
    depth_area: f64,
    last_depth_at: u64,
    end_ns: u64,
    // per-class and distribution measurement
    class_arrivals: Vec<u64>,
    class_shed: Vec<u64>,
    class_latencies: Vec<Vec<u64>>,
    latency_hist: Histogram,
    batch_hist: Histogram,
}

impl<'a> Sim<'a> {
    pub(crate) fn new(profile: &'a ServiceProfile, cfg: &'a ServeConfig) -> Sim<'a> {
        let n = profile.stages.len();
        Sim {
            profile,
            cfg,
            heap: BinaryHeap::new(),
            seq: 0,
            gen: ArrivalGen::new(cfg.load, cfg.seed),
            queue: VecDeque::new(),
            slots: (0..n).map(|_| Slot::default()).collect(),
            busy_ns: vec![0; n],
            stage_service_ns: profile.stages.iter().map(|s| s.service_ns).collect(),
            inflight: 0,
            arrivals: 0,
            admitted: 0,
            shed_full: 0,
            shed_deadline: 0,
            completed: 0,
            degraded: 0,
            batches: 0,
            batch_items: 0,
            latencies: Vec::new(),
            maint_active: vec![false; n],
            maint_pending: (0..n).map(|_| VecDeque::new()).collect(),
            maint_busy_ns: vec![0; n],
            maint_done: vec![0; n],
            peak_depth: 0,
            depth_area: 0.0,
            last_depth_at: 0,
            end_ns: 0,
            class_arrivals: vec![0; cfg.classes.len()],
            class_shed: vec![0; cfg.classes.len()],
            class_latencies: vec![Vec::new(); cfg.classes.len()],
            latency_hist: Histogram::new(),
            batch_hist: Histogram::new(),
        }
    }

    fn push(&mut self, time: u64, code: u64) {
        self.heap.push(Reverse((time, self.seq, code)));
        self.seq += 1;
    }

    /// Accumulates queue-depth × time up to `now` (call before the depth
    /// changes).
    fn note_depth(&mut self, now: u64) {
        self.depth_area += self.queue.len() as f64 * now.saturating_sub(self.last_depth_at) as f64;
        self.last_depth_at = now;
    }

    /// Batch service time at stage `s` for `n` inferences: the replicated
    /// tiles process the batch back-to-back.
    fn service_ns(&self, s: usize, n: usize) -> u64 {
        (self.stage_service_ns[s] * n as f64).ceil().max(1.0) as u64
    }

    /// Overrides one stage's effective service time (autoscaler changing
    /// the replication factor). Batches already occupying the stage keep
    /// their scheduled completion time; the new rate applies from the
    /// next dispatch on.
    pub(crate) fn set_stage_service_ns(&mut self, s: usize, service_ns: f64) {
        self.stage_service_ns[s] = service_ns;
    }

    /// Predicted completion latency of a request admitted now: everything
    /// ahead of it (queued + in flight) drains at the bottleneck rate,
    /// then it traverses the pipeline once itself. Uses the *effective*
    /// stage times so autoscaled tenants predict with their current rate
    /// (identical to the profile's when nothing rescaled).
    fn predicted_latency_ns(&self) -> f64 {
        let bottleneck = self.stage_service_ns.iter().copied().fold(0.0f64, f64::max);
        let fill: f64 = self.stage_service_ns.iter().sum();
        (self.queue.len() as u64 + self.inflight) as f64 * bottleneck + fill
    }

    /// Draws the class of the next arrival and counts it. A pure function
    /// of `(seed, arrival index)`: the stream is identical whatever the
    /// thread count or event interleaving.
    pub(crate) fn next_arrival_class(&mut self) -> u16 {
        let class = self.cfg.classes.pick(self.cfg.seed, self.arrivals);
        self.arrivals += 1;
        self.class_arrivals[class as usize] += 1;
        class
    }

    /// The solo admission decision: backpressure on a full queue, then
    /// deadline feasibility. The fleet layer may downgrade an `Admit` for
    /// its own reasons (rate limit, shared-pool overload) before calling
    /// [`Sim::finish_arrival`].
    pub(crate) fn default_admission(&self) -> AdmitDecision {
        if self.queue.len() >= self.cfg.queue_capacity {
            AdmitDecision::ShedFull
        } else if self.cfg.deadline_ns > 0
            && self.predicted_latency_ns() > self.cfg.deadline_ns as f64
        {
            AdmitDecision::ShedDeadline
        } else {
            AdmitDecision::Admit
        }
    }

    /// Applies an admission decision, schedules the next arrival, and
    /// gives the batch former a chance. Together with
    /// [`Sim::next_arrival_class`] and [`Sim::default_admission`] this is
    /// exactly the solo arrival handler, split so the fleet can interpose
    /// its own admission control between the draw and the commit.
    pub(crate) fn finish_arrival(&mut self, now: u64, class: u16, decision: AdmitDecision) {
        match decision {
            AdmitDecision::ShedFull => {
                self.shed_full += 1;
                self.class_shed[class as usize] += 1;
            }
            AdmitDecision::ShedDeadline => {
                self.shed_deadline += 1;
                self.class_shed[class as usize] += 1;
            }
            AdmitDecision::Admit => {
                self.note_depth(now);
                self.queue.push_back((now, class));
                self.peak_depth = self.peak_depth.max(self.queue.len() as u64);
                self.push(now.saturating_add(self.cfg.batch.timeout_ns), EV_TIMER);
                self.admitted += 1;
            }
        }
        let next = self.gen.next_arrival_ns();
        if next <= self.cfg.duration_ns {
            self.push(next, EV_ARRIVAL);
        }
        self.try_form(now);
    }

    fn on_arrival(&mut self, now: u64) {
        let class = self.next_arrival_class();
        let decision = self.default_admission();
        self.finish_arrival(now, class, decision);
    }

    /// Removes the newest queued request (fleet overload eviction in
    /// favour of a higher-priority arrival). The victim is retroactively
    /// reclassified as backpressure-shed — it never received service — so
    /// the tenant's own conservation laws (`arrivals = admitted + shed`,
    /// `completed = admitted` after drain) keep holding. Any batch timer
    /// it scheduled stays in the heap and fires as a harmless no-op.
    pub(crate) fn evict_newest(&mut self, now: u64) -> Option<(u64, u16)> {
        if self.queue.is_empty() {
            return None;
        }
        self.note_depth(now);
        let (at, class) = self.queue.pop_back().expect("queue is non-empty");
        self.admitted -= 1;
        self.shed_full += 1;
        self.class_shed[class as usize] += 1;
        Some((at, class))
    }

    /// Dispatches the head of the queue onto stage 0 when the formation
    /// policy allows it.
    fn try_form(&mut self, now: u64) {
        if self.slots[0].batch.is_some() || self.maint_active[0] || self.queue.is_empty() {
            return;
        }
        let oldest_wait = now - self.queue.front().expect("queue is non-empty").0;
        if self.queue.len() < self.cfg.batch.max_size && oldest_wait < self.cfg.batch.timeout_ns {
            return;
        }
        let take = self.queue.len().min(self.cfg.batch.max_size);
        self.note_depth(now);
        let arrivals: Vec<(u64, u16)> = self.queue.drain(..take).collect();
        self.inflight += take as u64;
        self.batches += 1;
        self.batch_items += take as u64;
        self.batch_hist.record(take as u64);
        let svc = self.service_ns(0, take);
        self.busy_ns[0] += svc;
        self.slots[0] = Slot {
            batch: Some(Batch {
                arrivals,
                degraded: self.profile.stages[0].fault.is_some(),
            }),
            done: false,
        };
        self.push(now.saturating_add(svc), EV_STAGE_BASE);
    }

    /// Moves finished batches downstream (last stage first, so a slot
    /// freed in this pass can accept its upstream neighbour), completing
    /// those that leave the final stage, then tries to form a new batch.
    fn advance(&mut self, now: u64) {
        let last = self.slots.len() - 1;
        for s in (0..=last).rev() {
            if !self.slots[s].done {
                continue;
            }
            if s == last {
                let batch = self.slots[s].batch.take().expect("done slot holds a batch");
                self.slots[s].done = false;
                let n = batch.arrivals.len() as u64;
                for &(a, class) in &batch.arrivals {
                    let latency = now - a;
                    self.latencies.push(latency);
                    self.latency_hist.record(latency);
                    self.class_latencies[class as usize].push(latency);
                }
                self.completed += n;
                self.inflight -= n;
                if batch.degraded {
                    self.degraded += n;
                }
                self.start_pending_maint(s, now);
            } else if self.slots[s + 1].batch.is_none() && !self.maint_active[s + 1] {
                let mut batch = self.slots[s].batch.take().expect("done slot holds a batch");
                self.slots[s].done = false;
                batch.degraded |= self.profile.stages[s + 1].fault.is_some();
                let svc = self.service_ns(s + 1, batch.arrivals.len());
                self.busy_ns[s + 1] += svc;
                self.slots[s + 1] = Slot {
                    batch: Some(batch),
                    done: false,
                };
                self.push(now.saturating_add(svc), EV_STAGE_BASE + (s as u64 + 1));
                self.start_pending_maint(s, now);
            }
        }
        self.try_form(now);
    }

    /// Occupies stage `s` with the oldest pending maintenance window if
    /// the slot is free. Maintenance takes priority over upstream batches
    /// waiting to move in — a quiesced tile must not keep serving.
    fn start_pending_maint(&mut self, s: usize, now: u64) {
        if self.maint_active[s] || self.slots[s].batch.is_some() {
            return;
        }
        if let Some(duration) = self.maint_pending[s].pop_front() {
            let duration = duration.max(1);
            self.maint_active[s] = true;
            self.maint_busy_ns[s] += duration;
            let n = self.slots.len() as u64;
            self.push(now.saturating_add(duration), EV_STAGE_BASE + n + s as u64);
        }
    }

    /// Queues a maintenance window of `duration_ns` on stage `s`,
    /// starting it immediately when the stage is idle. While a window is
    /// active the stage serves nothing: upstream batches block in place
    /// (head-of-line), exactly as behind a slow batch.
    pub(crate) fn request_maintenance(&mut self, s: usize, duration_ns: u64, now: u64) {
        self.maint_pending[s].push_back(duration_ns);
        self.start_pending_maint(s, now);
    }

    /// Completes the active maintenance window on stage `s`: the stage
    /// first continues with any queued maintenance, then resumes serving.
    fn finish_maintenance(&mut self, s: usize, now: u64) {
        self.maint_active[s] = false;
        self.maint_done[s] += 1;
        self.start_pending_maint(s, now);
        self.advance(now);
    }

    /// Schedules the first arrival (if any falls inside the horizon).
    pub(crate) fn prime(&mut self) {
        let first = self.gen.next_arrival_ns();
        if first <= self.cfg.duration_ns {
            self.push(first, EV_ARRIVAL);
        }
    }

    /// `(time, seq)` of the next pending event, if any. The fleet merges
    /// tenant heaps on `(time, tenant index)`; `seq` breaks no
    /// cross-tenant ties but documents the within-tenant order.
    pub(crate) fn peek_key(&self) -> Option<(u64, u64)> {
        self.heap.peek().map(|Reverse((t, s, _))| (*t, *s))
    }

    /// Pops the next event and advances the virtual end-of-run clock.
    pub(crate) fn pop_event(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((time, _, code))| {
            self.end_ns = self.end_ns.max(time);
            (time, code)
        })
    }

    /// Handles one popped event. Arrivals run the *solo* admission path;
    /// the fleet intercepts `EV_ARRIVAL` before calling this and drives
    /// the split handlers itself.
    pub(crate) fn dispatch(&mut self, time: u64, code: u64) {
        match code {
            EV_ARRIVAL => self.on_arrival(time),
            EV_TIMER => self.try_form(time),
            _ => {
                let s = (code - EV_STAGE_BASE) as usize;
                let n = self.slots.len();
                if s < n {
                    self.slots[s].done = true;
                    self.advance(time);
                } else {
                    self.finish_maintenance(s - n, time);
                }
            }
        }
    }

    fn run(&mut self) {
        self.prime();
        while let Some((time, code)) = self.pop_event() {
            self.dispatch(time, code);
        }
    }

    pub(crate) fn into_report(mut self) -> ServeReport {
        let end = self.end_ns.max(self.cfg.duration_ns);
        self.note_depth(end);
        let latency = LatencyStats::compute(&mut self.latencies);
        let stages = self
            .profile
            .stages
            .iter()
            .zip(&self.busy_ns)
            .map(|(p, &busy)| StageStat {
                name: p.name.clone(),
                busy_ns: busy,
                occupancy: busy as f64 / end.max(1) as f64,
                replication: p.replication as u64,
                reads: p.reads.saturating_mul(self.completed),
                energy_j: p.energy_j * self.completed as f64,
            })
            .collect();
        let classes = self
            .cfg
            .classes
            .classes
            .iter()
            .zip(&self.class_arrivals)
            .zip(&self.class_shed)
            .zip(&mut self.class_latencies)
            .map(|(((spec, &arrivals), &shed), latencies)| ClassStat {
                name: spec.name.clone(),
                arrivals,
                shed,
                completed: latencies.len() as u64,
                latency: LatencyStats::compute(latencies),
            })
            .collect();
        let shed = self.shed_full + self.shed_deadline;
        counters::add(Event::RequestsAdmitted, self.admitted);
        counters::add(Event::RequestsShed, shed);
        counters::add(Event::BatchesFormed, self.batches);
        counters::record_max(Event::QueueDepthPeak, self.peak_depth);
        let energy_j = self.completed as f64 * self.profile.energy_per_inference_j;
        counters::add_energy_joules(energy_j);
        ServeReport {
            offered_rps: self.cfg.load.mean_rps(),
            duration_ns: self.cfg.duration_ns,
            end_ns: end,
            arrivals: self.arrivals,
            admitted: self.admitted,
            shed_full: self.shed_full,
            shed_deadline: self.shed_deadline,
            completed: self.completed,
            degraded: self.degraded,
            batches: self.batches,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.batch_items as f64 / self.batches as f64
            },
            latency,
            peak_queue_depth: self.peak_depth,
            mean_queue_depth: self.depth_area / end.max(1) as f64,
            stages,
            classes,
            latency_hist: HistSummary::from_hist(&self.latency_hist),
            batch_hist: HistSummary::from_hist(&self.batch_hist),
            energy_j,
            throughput_rps: self.completed as f64 / (end.max(1) as f64 / 1e9),
        }
    }
}

/// Runs one serving simulation to completion (arrival horizon plus
/// drain) and returns its measurements.
///
/// Pure in `(profile, cfg)`: bit-identical on every call, at any thread
/// count, because all state lives on the virtual clock.
pub fn simulate(profile: &ServiceProfile, cfg: &ServeConfig) -> Result<ServeReport, SeiError> {
    let _trace = trace::scope("serve", || {
        format!(
            "simulate rps={:.0} batch={} seed={}",
            cfg.load.mean_rps(),
            cfg.batch.max_size,
            cfg.seed
        )
    });
    cfg.validate()?;
    validate_profile(profile)?;
    let mut sim = Sim::new(profile, cfg);
    sim.run();
    Ok(sim.into_report())
}

/// A solo serving simulation opened for **event-by-event external
/// stepping** — the seam the lifecycle subsystem (`sei-lifecycle`)
/// drives to interleave reprogramming with live traffic.
///
/// The contract mirrors the fleet's degenerate guarantee: a driver that
/// only calls [`step`](SimDriver::step) until exhaustion replays exactly
/// the loop inside [`simulate`] (prime, pop, dispatch), so its
/// [`into_report`](SimDriver::into_report) is **byte-for-byte identical**
/// to the solo path on the same `(profile, config)`. External callers
/// perturb the run only through two explicit, virtual-clock-pure hooks:
///
/// * [`set_stage_service_ns`](SimDriver::set_stage_service_ns) — rescale
///   a stage's effective service time (a drained replica or an in-place
///   write duty cycle), applied from the next dispatch on;
/// * [`request_maintenance`](SimDriver::request_maintenance) — occupy a
///   stage exclusively for a window (full quiesce of an unreplicated
///   tile), with upstream head-of-line blocking exactly as behind a slow
///   batch.
///
/// Both hooks schedule all their effects on the simulation's own event
/// heap, so determinism (and thread/kernel invariance) is preserved by
/// construction: no wall-clock or thread-dependent quantity can enter.
pub struct SimDriver<'a> {
    sim: Sim<'a>,
}

impl<'a> SimDriver<'a> {
    /// Validates the configuration and opens a primed simulation (the
    /// first arrival is already scheduled).
    pub fn new(
        profile: &'a ServiceProfile,
        cfg: &'a ServeConfig,
    ) -> Result<SimDriver<'a>, SeiError> {
        cfg.validate()?;
        validate_profile(profile)?;
        let mut sim = Sim::new(profile, cfg);
        sim.prime();
        Ok(SimDriver { sim })
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.sim.slots.len()
    }

    /// Virtual time of the next pending event, if any. An external
    /// scheduler compares this against its own wake times and acts
    /// first on ties (the same tick-before-events order the fleet's
    /// autoscaler uses).
    pub fn peek_time(&self) -> Option<u64> {
        self.sim.peek_key().map(|(t, _)| t)
    }

    /// Pops and handles the next event, returning its virtual time.
    /// `None` once the simulation has drained.
    pub fn step(&mut self) -> Option<u64> {
        let (time, code) = self.sim.pop_event()?;
        self.sim.dispatch(time, code);
        Some(time)
    }

    /// Current effective service time (ns) of stage `s`.
    pub fn stage_service_ns(&self, s: usize) -> f64 {
        self.sim.stage_service_ns[s]
    }

    /// Overrides stage `s`'s effective service time from the next
    /// dispatch on (in-flight batches keep their completion times).
    pub fn set_stage_service_ns(&mut self, s: usize, service_ns: f64) {
        self.sim.set_stage_service_ns(s, service_ns);
    }

    /// Queues an exclusive maintenance window of `duration_ns` on stage
    /// `s`, starting at the caller's current virtual time `now` if the
    /// stage is idle, else as soon as it next frees. `now` must not
    /// precede the last stepped event's time.
    pub fn request_maintenance(&mut self, s: usize, duration_ns: u64, now: u64) {
        self.sim.request_maintenance(s, duration_ns, now);
    }

    /// Whether a maintenance window currently occupies stage `s`.
    pub fn maintenance_active(&self, s: usize) -> bool {
        self.sim.maint_active[s]
    }

    /// Maintenance windows completed on stage `s` so far — the signal an
    /// external scheduler polls after each [`step`](SimDriver::step) to
    /// learn when a quiesce-reprogram window actually finished (its start
    /// may have been delayed by an occupying batch).
    pub fn maintenance_completed(&self, s: usize) -> u64 {
        self.sim.maint_done[s]
    }

    /// Total virtual time stage `s` has spent (or is committed to spend)
    /// in maintenance windows.
    pub fn maintenance_busy_ns(&self, s: usize) -> u64 {
        self.sim.maint_busy_ns[s]
    }

    /// Requests currently queued for admission.
    pub fn queue_len(&self) -> usize {
        self.sim.queue.len()
    }

    /// Requests admitted but not yet completed.
    pub fn inflight(&self) -> u64 {
        self.sim.inflight
    }

    /// Finalizes the run into the standard serving report. The report
    /// schema is unchanged by maintenance: stage `busy_ns`/`occupancy`
    /// count *serving* time only, so the no-update path stays byte-equal
    /// to [`simulate`]; update-attributable measures live in the caller's
    /// own (lifecycle) report.
    pub fn into_report(self) -> ServeReport {
        self.sim.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StageProfile;
    use sei_faults::{FaultMap, FaultModel};

    fn profile() -> ServiceProfile {
        // Bottleneck 1 µs → saturation at 1e6 inferences/s.
        ServiceProfile::new(
            vec![
                StageProfile::new("conv1", 1000.0),
                StageProfile::new("conv2", 400.0),
                StageProfile::new("fc", 100.0),
            ],
            2.5e-6,
        )
    }

    fn config(rate_mult: f64) -> ServeConfig {
        ServeConfig {
            load: LoadModel::Poisson {
                rate_rps: rate_mult * 1e6,
            },
            classes: ClassMix::default(),
            batch: BatchPolicy {
                max_size: 8,
                timeout_ns: 20_000,
            },
            queue_capacity: 128,
            deadline_ns: 0,
            duration_ns: 20_000_000, // 20 ms of virtual traffic
            seed: 11,
        }
    }

    #[test]
    fn simulate_is_bit_identical_across_calls() {
        let p = profile();
        let a = simulate(&p, &config(0.9)).unwrap();
        let b = simulate(&p, &config(0.9)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
    }

    #[test]
    fn low_load_has_no_shedding_and_pipeline_fill_latency() {
        let p = profile();
        let r = simulate(&p, &config(0.05)).unwrap();
        assert_eq!(r.shed(), 0);
        assert!(r.completed > 0);
        assert_eq!(r.arrivals, r.admitted);
        assert_eq!(r.completed, r.admitted, "everything drains");
        // At 5% load most batches are singletons formed by timeout, so the
        // median latency is about timeout + pipeline fill.
        let fill = p.pipeline_fill_ns();
        assert!(
            (r.latency.p50_ns as f64) < 20_000.0 + 4.0 * fill,
            "p50 {} fill {}",
            r.latency.p50_ns,
            fill
        );
    }

    #[test]
    fn tail_latency_grows_toward_saturation() {
        let p = profile();
        let light = simulate(&p, &config(0.3)).unwrap();
        let heavy = simulate(&p, &config(0.95)).unwrap();
        assert!(
            heavy.latency.p99_ns > light.latency.p99_ns,
            "p99 light {} heavy {}",
            light.latency.p99_ns,
            heavy.latency.p99_ns
        );
        assert!(heavy.mean_queue_depth > light.mean_queue_depth);
    }

    #[test]
    fn overload_sheds_instead_of_unbounded_queueing() {
        let p = profile();
        let r = simulate(&p, &config(1.6)).unwrap();
        assert!(r.shed_full > 0, "backpressure must engage: {r:?}");
        assert!(r.peak_queue_depth <= 128);
        // The queue bound also bounds the tail: an admitted request waits
        // at most for the full queue plus two in-flight batches to drain
        // at the bottleneck rate, one batch-formation timeout, and its own
        // batch's pipeline traversal. Without shedding, the 60 % excess
        // load would instead pile up ~12 ms of latency over this run.
        let bound = (128.0 + 16.0) * p.bottleneck_ns() + 20_000.0 + 8.0 * p.pipeline_fill_ns();
        assert!(
            (r.latency.max_ns as f64) < bound,
            "max latency {} vs bound {bound}",
            r.latency.max_ns
        );
        // Goodput saturates near the slowest-stage bound.
        assert!(r.throughput_rps < 1.05e6);
        assert!(r.throughput_rps > 0.7e6);
    }

    #[test]
    fn deadline_shedding_bounds_latency_tighter_than_backpressure() {
        let p = profile();
        let mut cfg = config(1.6);
        cfg.deadline_ns = 40_000;
        let r = simulate(&p, &cfg).unwrap();
        assert!(r.shed_deadline > 0, "{r:?}");
        // Predicted-latency admission keeps the queue far below capacity.
        assert!(r.peak_queue_depth < 128, "{r:?}");
        assert!(r.completed > 0);
    }

    #[test]
    fn batches_fill_up_under_pressure() {
        let p = profile();
        let light = simulate(&p, &config(0.05)).unwrap();
        let heavy = simulate(&p, &config(1.4)).unwrap();
        assert!(light.mean_batch < heavy.mean_batch);
        assert!(heavy.mean_batch > 6.0, "mean batch {}", heavy.mean_batch);
    }

    #[test]
    fn degraded_tile_marks_completions() {
        let map = FaultMap::generate(64, 64, &FaultModel::uniform(0.05), 3);
        let p = profile().with_stage_fault(1, &map);
        let r = simulate(&p, &config(0.5)).unwrap();
        assert_eq!(r.degraded, r.completed, "every batch crosses stage 1");
        let healthy = simulate(&profile(), &config(0.5)).unwrap();
        assert_eq!(healthy.degraded, 0);
        // Fault degradation changes accuracy, not timing.
        assert_eq!(r.completed, healthy.completed);
        assert_eq!(r.latency, healthy.latency);
    }

    #[test]
    fn energy_tracks_completions() {
        let p = profile();
        let r = simulate(&p, &config(0.5)).unwrap();
        assert!((r.energy_per_inference_j() - 2.5e-6).abs() < 1e-18);
        assert!((r.energy_j - r.completed as f64 * 2.5e-6).abs() < 1e-12);
    }

    #[test]
    fn stage_occupancy_is_sane_and_bottleneck_dominates() {
        let r = simulate(&profile(), &config(0.95)).unwrap();
        for s in &r.stages {
            assert!(s.occupancy >= 0.0 && s.occupancy <= 1.0, "{s:?}");
        }
        assert!(
            r.stages[0].occupancy > r.stages[2].occupancy,
            "bottleneck stage must be busiest: {:?}",
            r.stages
        );
    }

    #[test]
    fn class_mix_partitions_every_counter() {
        let p = profile();
        let mut cfg = config(1.4); // overload so shedding engages
        cfg.classes = "interactive:3,batch:1".parse().unwrap();
        let r = simulate(&p, &cfg).unwrap();
        assert_eq!(r.classes.len(), 2);
        assert_eq!(r.classes[0].name, "interactive");
        // Class counters partition the global ones exactly.
        assert_eq!(
            r.classes.iter().map(|c| c.arrivals).sum::<u64>(),
            r.arrivals
        );
        assert_eq!(r.classes.iter().map(|c| c.shed).sum::<u64>(), r.shed());
        assert_eq!(
            r.classes.iter().map(|c| c.completed).sum::<u64>(),
            r.completed
        );
        // The 3:1 mix shows up in the assignment.
        let frac = r.classes[0].arrivals as f64 / r.arrivals as f64;
        assert!((frac - 0.75).abs() < 0.05, "interactive fraction {frac}");
        // Classes share the queue, so their percentiles are comparable.
        assert!(r
            .classes
            .iter()
            .all(|c| c.latency.p99_ns <= r.latency.max_ns));
        // Single-class runs report the default class without a draw and
        // match the global stats exactly.
        let plain = simulate(&p, &config(1.4)).unwrap();
        assert_eq!(plain.classes.len(), 1);
        assert_eq!(plain.classes[0].latency, plain.latency);
        // The classed run's global measurements are identical to the
        // unclassed run's: class assignment must not perturb the sim.
        assert_eq!(plain.latency, r.latency);
        assert_eq!(plain.completed, r.completed);
    }

    #[test]
    fn histograms_match_exact_stats() {
        let p = profile();
        let r = simulate(&p, &config(0.9)).unwrap();
        assert_eq!(r.latency_hist.count, r.completed);
        assert_eq!(r.batch_hist.count, r.batches);
        // Log-bucket percentiles are lower bounds within 12.5% of exact.
        assert!(r.latency_hist.p50 <= r.latency.p50_ns);
        assert!(r.latency_hist.p50 as f64 >= r.latency.p50_ns as f64 * 0.875 - 1.0);
        assert!(r.latency_hist.p99 <= r.latency.p99_ns);
        let batch_total: u64 = r.batch_hist.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(batch_total, r.batches);
        // Invalid mixes are rejected up front.
        let mut bad = config(0.9);
        bad.classes = ClassMix { classes: vec![] };
        assert!(simulate(&p, &bad).is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let p = profile();
        let mut c = config(0.5);
        c.batch.max_size = 0;
        assert!(simulate(&p, &c).is_err());
        let mut c = config(0.5);
        c.queue_capacity = 0;
        assert!(simulate(&p, &c).is_err());
        let mut c = config(0.5);
        c.duration_ns = 0;
        assert!(simulate(&p, &c).is_err());
        let mut c = config(0.5);
        c.load = LoadModel::Poisson { rate_rps: 0.0 };
        assert!(simulate(&p, &c).is_err());
        let empty = ServiceProfile::new(vec![], 0.0);
        assert!(simulate(&empty, &config(0.5)).is_err());
    }

    #[test]
    fn burst_load_sheds_in_bursts_only() {
        let p = profile();
        let mut cfg = config(0.5);
        cfg.load = LoadModel::Burst {
            base_rps: 0.2e6,
            burst_rps: 3.0e6,
            period_ns: 2_000_000,
            burst_fraction: 0.25,
        };
        let r = simulate(&p, &cfg).unwrap();
        // Mean load (0.9 of saturation) is serveable, but the 3× bursts
        // overwhelm the queue.
        assert!(r.shed() > 0, "{r:?}");
        assert!(r.completed > 0);
    }
}
