//! Fleet scheduling: several mapped models sharing one simulated tile
//! pool, with per-priority-class admission and backlog-driven autoscaling.
//!
//! The solo serving layer ([`crate::sim`]) maps one network onto one
//! private set of tiles. A production accelerator is decided at the
//! fleet/array-utilization level: many models, adversarial traffic mixes,
//! one pool of physical crossbar tiles. This module adds that layer:
//!
//! * a **tile-ownership layer** ([`TilePool`]) between [`ServiceProfile`]
//!   and the pipelined scheduler — every tenant owns an exclusive,
//!   pool-relative set of [`TileHandle`]s (never two owners per tile),
//!   acquired least-burdened-first via [`sei_faults::burden_order`], the
//!   same rearrangement argument the fault-aware remapping uses;
//! * **per-tenant admission queues** with [`Sim`]'s solo backpressure and
//!   deadline shedding, plus two fleet-level controls: a per-tenant
//!   **token bucket** whose empty buckets may borrow from a shared burst
//!   budget (bounded — borrowing never exceeds [`FleetConfig::burst_budget`],
//!   and refill overflow repays the pool), and a shared queue capacity
//!   with **shed-low-priority-first** overload behaviour — an arrival of a
//!   higher-priority tenant evicts the newest queued request of the
//!   lowest-priority tenant instead of being shed itself;
//! * a **backlog-driven autoscaler** ([`AutoscalePolicy`]): sampled at a
//!   fixed virtual-clock interval, a tenant whose queue depth stays above
//!   `up_depth` for `sustain` consecutive ticks acquires one more
//!   replication worth of tiles (service times rescaled through
//!   [`sei_mapping::timing::replicated_cycles`], the same rounding the
//!   design-time analysis uses), and scales back down only when idle —
//!   queue at or below `down_depth` **and** nothing in flight — so
//!   scale-down can never strand an in-flight batch.
//!
//! # Determinism and the degenerate guarantee
//!
//! The fleet runs every tenant's event heap on the shared virtual clock
//! and always picks the globally earliest event, ordered by `(time,
//! tenant index)`; within one tenant events keep their solo `(time, seq)`
//! order. For a single tenant with fleet controls disabled
//! ([`FleetConfig::solo`]) the merge is the identity, so the tenant's
//! [`ServeReport`] is **byte-for-byte identical** to [`crate::simulate`]
//! on the same `(profile, config)` — the golden-trace anchor that lets
//! every fleet feature ride on the already-verified solo scheduler.
//! Nothing here reads the wall clock, thread count, or kernel backend, so
//! [`run_fleet_sweep`] output is byte-identical at any `SEI_THREADS` /
//! `SEI_KERNELS`.

use crate::load::LoadModel;
use crate::metrics::{LatencyStats, ServeReport};
use crate::profile::{ServiceProfile, StageProfile};
use crate::sim::{validate_profile, AdmitDecision, ServeConfig, Sim, EV_ARRIVAL};
use sei_engine::{Engine, SeiError};
use sei_faults::burden_order;
use sei_mapping::timing::replicated_cycles;
use sei_telemetry::counters::{self, Event};
use sei_telemetry::json::Value;
use sei_telemetry::trace;
use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// Pool-relative handle of one physical crossbar tile. Tenants address
/// tiles only through handles the pool granted them — there are no
/// absolute tile indices in the serving layer any more, so remapping a
/// tenant onto different physical tiles never invalidates its profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileHandle(pub u32);

/// The shared pool of physical tiles with exclusive per-tenant ownership.
///
/// Acquisition is deterministic and fault-aware: free tiles are granted
/// in ascending `(stuck-cell burden, index)` order so tenants land on the
/// healthiest available silicon first (the rearrangement-inequality
/// argument of `sei_mapping::fault_aware`, applied at pool granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct TilePool {
    /// `owner[t]` is the tenant index owning tile `t`, if any.
    owner: Vec<Option<u16>>,
    /// Stuck-cell burden per tile (all zero for a healthy pool).
    burden: Vec<u64>,
    /// Low-water mark of the free-tile count over the pool's lifetime.
    min_free: usize,
}

impl TilePool {
    /// A healthy pool of `total` tiles.
    #[must_use]
    pub fn new(total: usize) -> TilePool {
        TilePool::with_burdens(vec![0; total])
    }

    /// A pool whose tiles carry the given stuck-cell burdens.
    #[must_use]
    pub fn with_burdens(burden: Vec<u64>) -> TilePool {
        let total = burden.len();
        TilePool {
            owner: vec![None; total],
            burden,
            min_free: total,
        }
    }

    /// Total tiles in the pool.
    #[must_use]
    pub fn total(&self) -> usize {
        self.owner.len()
    }

    /// Currently unowned tiles.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.owner.iter().filter(|o| o.is_none()).count()
    }

    /// Fewest free tiles ever observed (capacity headroom of the run).
    #[must_use]
    pub fn min_free(&self) -> usize {
        self.min_free
    }

    /// Owner of a tile, if any.
    #[must_use]
    pub fn owner(&self, tile: TileHandle) -> Option<u16> {
        self.owner.get(tile.0 as usize).copied().flatten()
    }

    /// Current burden of one tile: its initial stuck-cell burden plus
    /// any write-wear recorded via [`TilePool::add_burden`].
    ///
    /// # Panics
    ///
    /// Panics when the handle is out of range (a handle this pool never
    /// granted).
    #[must_use]
    pub fn burden(&self, tile: TileHandle) -> u64 {
        self.burden[tile.0 as usize]
    }

    /// Adds `delta` to one tile's burden. The lifecycle scheduler calls
    /// this as write-wear accrues, so subsequent [`TilePool::acquire`]
    /// calls (least-burdened first) and rotation-target choices see wear
    /// and stuck cells through one ordering.
    ///
    /// # Panics
    ///
    /// Panics when the handle is out of range.
    pub fn add_burden(&mut self, tile: TileHandle, delta: u64) {
        let b = &mut self.burden[tile.0 as usize];
        *b = b.saturating_add(delta);
    }

    /// Grants `n` free tiles to `tenant`, least-burdened first, or `None`
    /// (changing nothing) when fewer than `n` tiles are free. Returned
    /// handles are sorted ascending.
    pub fn acquire(&mut self, tenant: u16, n: usize) -> Option<Vec<TileHandle>> {
        let free: Vec<usize> = (0..self.owner.len())
            .filter(|&t| self.owner[t].is_none())
            .collect();
        if free.len() < n {
            return None;
        }
        let burdens: Vec<u64> = free.iter().map(|&t| self.burden[t]).collect();
        let mut handles: Vec<TileHandle> = burden_order(&burdens)
            .into_iter()
            .take(n)
            .map(|i| TileHandle(free[i] as u32))
            .collect();
        for h in &handles {
            self.owner[h.0 as usize] = Some(tenant);
        }
        handles.sort_unstable();
        self.min_free = self.min_free.min(self.free_count());
        Some(handles)
    }

    /// Returns tiles to the pool.
    ///
    /// # Panics
    ///
    /// Panics if any handle is not owned by `tenant` — releasing someone
    /// else's tile is a scheduler bug, never a recoverable condition.
    pub fn release(&mut self, tenant: u16, handles: &[TileHandle]) {
        for h in handles {
            assert_eq!(
                self.owner[h.0 as usize],
                Some(tenant),
                "tile {h:?} released by tenant {tenant} but owned by {:?}",
                self.owner[h.0 as usize]
            );
            self.owner[h.0 as usize] = None;
        }
    }
}

/// One model (tenant) of the fleet: its mapped profile, its solo serving
/// configuration, its priority class, and its token-bucket rate limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name (unique within a fleet).
    pub name: String,
    /// Priority class: lower value = more important. The overload path
    /// sheds strictly-lower-priority (higher-value) tenants first.
    pub priority: u8,
    /// The tenant's mapped design.
    pub profile: ServiceProfile,
    /// The tenant's own arrival process, batching, queue and deadline.
    pub config: ServeConfig,
    /// Token-bucket refill rate (tokens/s). `f64::INFINITY` disables rate
    /// limiting for this tenant.
    pub rate_rps: f64,
    /// Token-bucket capacity (its private burst allowance). Ignored when
    /// `rate_rps` is infinite.
    pub bucket: f64,
}

impl TenantSpec {
    /// A tenant without rate limiting.
    #[must_use]
    pub fn new(name: &str, priority: u8, profile: ServiceProfile, config: ServeConfig) -> Self {
        TenantSpec {
            name: name.to_string(),
            priority,
            profile,
            config,
            rate_rps: f64::INFINITY,
            bucket: 0.0,
        }
    }

    /// Adds a token-bucket rate limit (refill `rate_rps`, capacity
    /// `bucket`, bucket starts full).
    #[must_use]
    pub fn with_rate_limit(mut self, rate_rps: f64, bucket: f64) -> Self {
        self.rate_rps = rate_rps;
        self.bucket = bucket;
        self
    }
}

/// Backlog-driven replication autoscaling policy, sampled on a fixed
/// virtual-clock tick. Disabled by default (and in [`FleetConfig::solo`],
/// where no tick events are scheduled at all — the degenerate-equality
/// guarantee depends on that).
///
/// Parses from the `SEI_SERVE_AUTOSCALE` knob: `off`, or
/// `up:down:sustain:interval_us[:max_repl]` (e.g. `12:1:3:500:4` — scale
/// up after 3 consecutive 500 µs ticks with ≥ 12 queued, scale down after
/// 3 idle ticks with ≤ 1 queued and nothing in flight, cap at 4×).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Whether autoscaling runs at all.
    pub enabled: bool,
    /// Queue depth at or above which a tick counts toward scale-up.
    pub up_depth: usize,
    /// Queue depth at or below which an idle tick counts toward
    /// scale-down (the tenant must also have nothing in flight).
    pub down_depth: usize,
    /// Consecutive qualifying ticks required before acting.
    pub sustain: u32,
    /// Sampling interval (virtual ns).
    pub interval_ns: u64,
    /// Replication ceiling per tenant. The floor is each tenant's initial
    /// replication — the fleet never takes away provisioned capacity.
    pub max_replication: usize,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            enabled: false,
            up_depth: 16,
            down_depth: 1,
            sustain: 3,
            interval_ns: 500_000,
            max_replication: 8,
        }
    }
}

impl FromStr for AutoscalePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.trim() == "off" {
            return Ok(AutoscalePolicy::default());
        }
        let parts: Vec<&str> = s.split(':').collect();
        if !(parts.len() == 4 || parts.len() == 5) {
            return Err(format!(
                "autoscale spec {s:?} must be `off` or `up:down:sustain:interval_us[:max_repl]`"
            ));
        }
        let field = |i: usize, what: &str| -> Result<u64, String> {
            parts[i].trim().parse::<u64>().map_err(|_| {
                format!(
                    "autoscale {what} {:?} is not a non-negative integer",
                    parts[i]
                )
            })
        };
        let up = field(0, "up_depth")?;
        let down = field(1, "down_depth")?;
        let sustain = field(2, "sustain")?;
        let interval_us = field(3, "interval_us")?;
        let max_repl = if parts.len() == 5 {
            field(4, "max_repl")?
        } else {
            8
        };
        if up == 0 {
            return Err("autoscale up_depth must be at least 1".to_string());
        }
        if down >= up {
            return Err(format!(
                "autoscale down_depth ({down}) must be below up_depth ({up})"
            ));
        }
        if sustain == 0 {
            return Err("autoscale sustain must be at least 1".to_string());
        }
        if interval_us == 0 {
            return Err("autoscale interval_us must be at least 1".to_string());
        }
        if max_repl == 0 {
            return Err("autoscale max_repl must be at least 1".to_string());
        }
        Ok(AutoscalePolicy {
            enabled: true,
            up_depth: up as usize,
            down_depth: down as usize,
            sustain: sustain as u32,
            interval_ns: interval_us * 1_000,
            max_replication: max_repl as usize,
        })
    }
}

/// One tenant of the `SEI_SERVE_TENANTS` knob:
/// `name:priority:weight[:burst_mult[:rate_frac[:bucket]]]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTenantArg {
    /// Tenant name.
    pub name: String,
    /// Priority class (lower = more important).
    pub priority: u8,
    /// Share of the fleet's offered load (normalized over all tenants).
    pub weight: f64,
    /// Burstiness: 1 = steady Poisson; up to 4 = periodic bursts at
    /// `burst_mult ×` the tenant's mean rate (mean preserved).
    pub burst_mult: f64,
    /// Token-bucket refill as a fraction of the tenant's offered rate
    /// (`inf` = unlimited).
    pub rate_frac: f64,
    /// Token-bucket capacity in tokens.
    pub bucket: f64,
}

/// The parsed `SEI_SERVE_TENANTS` env knob: a comma-separated tenant
/// list. The default (unset) is empty — fleet mode off. Malformed values
/// fail `FromStr`, which the bench harness turns into exit code 2
/// (`sei_telemetry::env` conventions).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetMix {
    /// Tenants in declaration order (tenant 0 first).
    pub tenants: Vec<FleetTenantArg>,
}

impl FleetMix {
    /// Whether fleet mode is off (no tenants configured).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

impl FromStr for FleetMix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut tenants = Vec::new();
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(format!("empty tenant entry in {s:?}"));
            }
            let parts: Vec<&str> = entry.split(':').collect();
            if !(3..=6).contains(&parts.len()) {
                return Err(format!(
                    "tenant entry {entry:?} must be `name:priority:weight[:burst_mult[:rate_frac[:bucket]]]`"
                ));
            }
            let name = parts[0].trim();
            if name.is_empty() {
                return Err(format!("tenant entry {entry:?} has an empty name"));
            }
            let priority: u8 = parts[1]
                .trim()
                .parse()
                .map_err(|_| format!("tenant {name:?} priority {:?} is not a u8", parts[1]))?;
            let weight: f64 = parts[2]
                .trim()
                .parse()
                .map_err(|_| format!("tenant {name:?} weight {:?} is not a number", parts[2]))?;
            if !(weight > 0.0 && weight.is_finite()) {
                return Err(format!(
                    "tenant {name:?} weight must be positive and finite, got {weight}"
                ));
            }
            let burst_mult: f64 = match parts.get(3) {
                None => 1.0,
                Some(v) => v
                    .trim()
                    .parse()
                    .map_err(|_| format!("tenant {name:?} burst_mult {v:?} is not a number"))?,
            };
            if !(1.0..=4.0).contains(&burst_mult) {
                return Err(format!(
                    "tenant {name:?} burst_mult must be in [1, 4], got {burst_mult}"
                ));
            }
            let rate_frac: f64 = match parts.get(4) {
                None => f64::INFINITY,
                Some(v) if v.trim() == "inf" => f64::INFINITY,
                Some(v) => v.trim().parse().map_err(|_| {
                    format!("tenant {name:?} rate_frac {v:?} is not a number or `inf`")
                })?,
            };
            if rate_frac.is_nan() || rate_frac <= 0.0 {
                return Err(format!(
                    "tenant {name:?} rate_frac must be positive, got {rate_frac}"
                ));
            }
            let bucket: f64 = match parts.get(5) {
                None => 32.0,
                Some(v) => v
                    .trim()
                    .parse()
                    .map_err(|_| format!("tenant {name:?} bucket {v:?} is not a number"))?,
            };
            if !(bucket >= 1.0 && bucket.is_finite()) {
                return Err(format!(
                    "tenant {name:?} bucket must be at least 1, got {bucket}"
                ));
            }
            if tenants.iter().any(|t: &FleetTenantArg| t.name == name) {
                return Err(format!("duplicate tenant name {name:?}"));
            }
            tenants.push(FleetTenantArg {
                name: name.to_string(),
                priority,
                weight,
                burst_mult,
                rate_frac,
                bucket,
            });
        }
        Ok(FleetMix { tenants })
    }
}

/// Configuration of one fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The models sharing the pool, in tenant-index order.
    pub tenants: Vec<TenantSpec>,
    /// Physical tiles in the pool; `0` sizes the pool to exactly the
    /// tenants' initial demand (no autoscale headroom).
    pub pool_tiles: usize,
    /// Optional per-tile stuck-cell burdens (length `pool_tiles`; empty =
    /// healthy pool). Acquisition prefers low-burden tiles.
    #[serde(default)]
    pub tile_burdens: Vec<u64>,
    /// Fleet-wide queued-request ceiling across all tenants; `0` disables
    /// the shared constraint (and with it priority eviction).
    pub shared_queue_capacity: usize,
    /// Shared burst budget: tokens a rate-limited tenant with an empty
    /// bucket may borrow. Borrowing never exceeds this; refill overflow
    /// repays the pool. `0` disables borrowing.
    pub burst_budget: f64,
    /// Replication autoscaling policy.
    pub autoscale: AutoscalePolicy,
    /// Check scheduler invariants (conservation, exclusive tile
    /// ownership, shed ordering, burst bounds) after every event,
    /// panicking on violation. For property tests; off in production
    /// sweeps.
    #[serde(default)]
    pub check_invariants: bool,
}

impl FleetConfig {
    /// The degenerate single-tenant fleet: every fleet-level control
    /// disabled, so the tenant's report is byte-identical to
    /// [`crate::simulate`] on the same `(profile, config)`.
    #[must_use]
    pub fn solo(spec: TenantSpec) -> FleetConfig {
        FleetConfig {
            tenants: vec![spec],
            pool_tiles: 0,
            tile_burdens: Vec::new(),
            shared_queue_capacity: 0,
            burst_budget: 0.0,
            autoscale: AutoscalePolicy::default(),
            check_invariants: false,
        }
    }

    /// Initial replication of one tenant: its profile's uniform stage
    /// replication factor.
    fn initial_replication(spec: &TenantSpec) -> usize {
        spec.profile
            .stages
            .first()
            .map_or(1, |s| s.replication.max(1))
    }

    /// Tiles a tenant needs at replication `r`: one tile per stage per
    /// replica (the profile's pool-relative demand).
    fn tile_demand(spec: &TenantSpec, r: usize) -> usize {
        spec.profile.tile_demand(r)
    }

    /// Total tiles the fleet needs at initial replication.
    fn initial_demand(&self) -> usize {
        self.tenants
            .iter()
            .map(|t| Self::tile_demand(t, Self::initial_replication(t)))
            .sum()
    }

    /// Effective pool size (auto-sized to initial demand when 0).
    fn effective_pool_tiles(&self) -> usize {
        if self.pool_tiles == 0 {
            self.initial_demand()
        } else {
            self.pool_tiles
        }
    }

    /// Checks the configuration, in the workspace's strict-config style.
    pub fn validate(&self) -> Result<(), SeiError> {
        if self.tenants.is_empty() {
            return Err(SeiError::invalid_config(
                "FleetConfig",
                "tenants",
                "must have at least one tenant",
            ));
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() {
                return Err(SeiError::invalid_config(
                    "FleetConfig",
                    "tenants.name",
                    format!("tenant {i} has an empty name"),
                ));
            }
            if self.tenants[..i].iter().any(|u| u.name == t.name) {
                return Err(SeiError::invalid_config(
                    "FleetConfig",
                    "tenants.name",
                    format!("duplicate tenant name {:?}", t.name),
                ));
            }
            t.config.validate()?;
            validate_profile(&t.profile)?;
            if t.rate_rps.is_nan() || t.rate_rps <= 0.0 {
                return Err(SeiError::invalid_config(
                    "FleetConfig",
                    "tenants.rate_rps",
                    format!("tenant {:?} rate must be positive (or infinite)", t.name),
                ));
            }
            if t.rate_rps.is_finite() && !(t.bucket >= 1.0 && t.bucket.is_finite()) {
                return Err(SeiError::invalid_config(
                    "FleetConfig",
                    "tenants.bucket",
                    format!(
                        "tenant {:?} bucket must be at least 1 token, got {}",
                        t.name, t.bucket
                    ),
                ));
            }
            if self.autoscale.enabled {
                let r0 = Self::initial_replication(t);
                if t.profile.stages.iter().any(|s| s.replication.max(1) != r0) {
                    return Err(SeiError::invalid_config(
                        "FleetConfig",
                        "tenants.profile",
                        format!(
                            "tenant {:?} has non-uniform stage replication; autoscaling requires a uniform factor",
                            t.name
                        ),
                    ));
                }
            }
        }
        if !self.tile_burdens.is_empty() && self.tile_burdens.len() != self.effective_pool_tiles() {
            return Err(SeiError::invalid_config(
                "FleetConfig",
                "tile_burdens",
                format!(
                    "got {} burdens for a {}-tile pool",
                    self.tile_burdens.len(),
                    self.effective_pool_tiles()
                ),
            ));
        }
        if self.effective_pool_tiles() < self.initial_demand() {
            return Err(SeiError::invalid_config(
                "FleetConfig",
                "pool_tiles",
                format!(
                    "pool of {} tiles cannot seat the initial demand of {}",
                    self.effective_pool_tiles(),
                    self.initial_demand()
                ),
            ));
        }
        if !(self.burst_budget >= 0.0 && self.burst_budget.is_finite()) {
            return Err(SeiError::invalid_config(
                "FleetConfig",
                "burst_budget",
                format!("must be finite and non-negative, got {}", self.burst_budget),
            ));
        }
        if self.autoscale.enabled {
            let a = &self.autoscale;
            if a.up_depth == 0 || a.down_depth >= a.up_depth || a.sustain == 0 || a.interval_ns == 0
            {
                return Err(SeiError::invalid_config(
                    "FleetConfig",
                    "autoscale",
                    format!("inconsistent policy {a:?}"),
                ));
            }
            if a.max_replication == 0 {
                return Err(SeiError::invalid_config(
                    "FleetConfig",
                    "autoscale.max_replication",
                    "must be at least 1",
                ));
            }
        }
        Ok(())
    }
}

/// Per-tenant fleet-level measurements (on top of the tenant's own
/// [`ServeReport`], which stays exactly what the solo scheduler would
/// report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Priority class.
    pub priority: u8,
    /// Replication at the start of the run.
    pub replication_initial: u64,
    /// Replication when the run ended.
    pub replication_final: u64,
    /// Highest replication reached.
    pub replication_peak: u64,
    /// Pool-relative tile handles owned at the end of the run (sorted).
    pub tiles: Vec<u32>,
    /// Autoscale-up events.
    pub scale_ups: u64,
    /// Autoscale-down events.
    pub scale_downs: u64,
    /// Tokens borrowed from the shared burst budget.
    pub borrowed_tokens: u64,
    /// Arrivals shed by the token-bucket rate limiter (counted inside the
    /// tenant report's `shed_full` as backpressure).
    pub shed_rate_limited: u64,
    /// Own arrivals shed because the shared queue was full and no
    /// lower-priority victim existed.
    pub shed_fleet_full: u64,
    /// Queued requests evicted in favour of higher-priority arrivals
    /// (also folded into the tenant report's `shed_full`).
    pub evicted: u64,
    /// The tenant's own serving measurements — byte-identical to a solo
    /// run whenever no fleet-level control touched this tenant.
    pub report: ServeReport,
}

/// Aggregate measurements of one priority class across all its tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetClassStat {
    /// Priority value (lower = more important).
    pub priority: u8,
    /// Tenants in this class.
    pub tenants: u64,
    /// Total arrivals across the class.
    pub arrivals: u64,
    /// Total admissions.
    pub admitted: u64,
    /// Total sheds (all reasons, evictions included).
    pub shed: u64,
    /// Total completions.
    pub completed: u64,
    /// Class goodput: completions per second of fleet virtual time.
    pub goodput_rps: f64,
    /// Exact latency percentiles over the class's merged completions.
    pub latency: LatencyStats,
}

/// Everything one fleet simulation measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Arrival horizon (virtual ns).
    pub duration_ns: u64,
    /// Virtual time of the last event across all tenants.
    pub end_ns: u64,
    /// Pool size (tiles).
    pub pool_tiles: u64,
    /// Tiles owned at the end of the run.
    pub tiles_owned: u64,
    /// Fewest free tiles observed (headroom low-water mark).
    pub free_tiles_min: u64,
    /// Configured shared burst budget (tokens).
    pub burst_budget: f64,
    /// Tokens borrowed from the shared budget across the run.
    pub burst_borrowed: u64,
    /// Tokens repaid into the budget by refill overflow.
    pub burst_repaid: f64,
    /// Budget remaining at the end of the run.
    pub burst_pool_final: f64,
    /// Total autoscale-up events.
    pub scale_ups: u64,
    /// Total autoscale-down events.
    pub scale_downs: u64,
    /// Per-tenant measurements, in tenant-index order.
    pub tenants: Vec<TenantReport>,
    /// Per-priority-class aggregates, ascending by priority value.
    pub classes: Vec<FleetClassStat>,
}

impl FleetReport {
    /// Total requests evicted across the fleet.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.tenants.iter().map(|t| t.evicted).sum()
    }

    /// Renders the report as one insertion-ordered JSON object for
    /// `sei-serve-fleet/v1` NDJSON rows. Every value is a pure function
    /// of the virtual clock, so the rendering is byte-stable.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("duration_ns", Value::UInt(self.duration_ns));
        o.set("end_ns", Value::UInt(self.end_ns));
        o.set("pool_tiles", Value::UInt(self.pool_tiles));
        o.set("tiles_owned", Value::UInt(self.tiles_owned));
        o.set("free_tiles_min", Value::UInt(self.free_tiles_min));
        o.set("burst_budget", Value::Float(self.burst_budget));
        o.set("burst_borrowed", Value::UInt(self.burst_borrowed));
        o.set("burst_repaid", Value::Float(self.burst_repaid));
        o.set("burst_pool_final", Value::Float(self.burst_pool_final));
        o.set("scale_ups", Value::UInt(self.scale_ups));
        o.set("scale_downs", Value::UInt(self.scale_downs));
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let mut to = Value::obj();
                to.set("name", Value::Str(t.name.clone()));
                to.set("priority", Value::UInt(u64::from(t.priority)));
                to.set("replication_initial", Value::UInt(t.replication_initial));
                to.set("replication_final", Value::UInt(t.replication_final));
                to.set("replication_peak", Value::UInt(t.replication_peak));
                to.set(
                    "tiles",
                    Value::Arr(t.tiles.iter().map(|&h| Value::UInt(u64::from(h))).collect()),
                );
                to.set("scale_ups", Value::UInt(t.scale_ups));
                to.set("scale_downs", Value::UInt(t.scale_downs));
                to.set("borrowed_tokens", Value::UInt(t.borrowed_tokens));
                to.set("shed_rate_limited", Value::UInt(t.shed_rate_limited));
                to.set("shed_fleet_full", Value::UInt(t.shed_fleet_full));
                to.set("evicted", Value::UInt(t.evicted));
                to.set("report", t.report.to_json());
                to
            })
            .collect();
        o.set("tenants", Value::Arr(tenants));
        let classes = self
            .classes
            .iter()
            .map(|c| {
                let mut co = Value::obj();
                co.set("priority", Value::UInt(u64::from(c.priority)));
                co.set("tenants", Value::UInt(c.tenants));
                co.set("arrivals", Value::UInt(c.arrivals));
                co.set("admitted", Value::UInt(c.admitted));
                co.set("shed", Value::UInt(c.shed));
                co.set("completed", Value::UInt(c.completed));
                co.set("goodput_rps", Value::Float(c.goodput_rps));
                co.set("p50_ns", Value::UInt(c.latency.p50_ns));
                co.set("p95_ns", Value::UInt(c.latency.p95_ns));
                co.set("p99_ns", Value::UInt(c.latency.p99_ns));
                co.set("max_ns", Value::UInt(c.latency.max_ns));
                co.set("mean_latency_ns", Value::Float(c.latency.mean_ns));
                co
            })
            .collect();
        o.set("classes", Value::Arr(classes));
        o
    }
}

/// Effective service time of `stage` at replication `r`: exact profile
/// value at the profile's own replication; otherwise rescaled through the
/// design-time cycle math ([`replicated_cycles`]) when the stage carries
/// read attribution, or proportionally for synthetic profiles. Public
/// because the lifecycle scheduler's drained strategy must rescale a
/// stage with exactly the autoscaler's rounding when it takes one
/// replica out of service.
pub fn scaled_service_ns(stage: &StageProfile, r: usize) -> f64 {
    let base = stage.replication.max(1);
    if r == base {
        return stage.service_ns;
    }
    if stage.reads > 0 {
        let base_cycles = replicated_cycles(stage.reads, base);
        let cycle_ns = stage.service_ns / base_cycles as f64;
        replicated_cycles(stage.reads, r) as f64 * cycle_ns
    } else {
        stage.service_ns * base as f64 / r as f64
    }
}

/// Mutable fleet-level state of one tenant.
struct TenantState {
    replication: usize,
    replication_initial: usize,
    replication_peak: usize,
    tiles: Vec<TileHandle>,
    tokens: f64,
    last_refill_ns: u64,
    borrowed: u64,
    shed_rate_limited: u64,
    shed_fleet_full: u64,
    evicted: u64,
    scale_ups: u64,
    scale_downs: u64,
    high_streak: u32,
    low_streak: u32,
}

struct FleetSim<'a> {
    cfg: &'a FleetConfig,
    sims: Vec<Sim<'a>>,
    tenants: Vec<TenantState>,
    pool: TilePool,
    burst_pool: f64,
    burst_borrowed: u64,
    burst_repaid: f64,
    next_tick_ns: u64,
    horizon_ns: u64,
}

impl<'a> FleetSim<'a> {
    fn new(cfg: &'a FleetConfig) -> Result<FleetSim<'a>, SeiError> {
        cfg.validate()?;
        let mut pool = if cfg.tile_burdens.is_empty() {
            TilePool::new(cfg.effective_pool_tiles())
        } else {
            TilePool::with_burdens(cfg.tile_burdens.clone())
        };
        let mut sims = Vec::with_capacity(cfg.tenants.len());
        let mut tenants = Vec::with_capacity(cfg.tenants.len());
        for (i, spec) in cfg.tenants.iter().enumerate() {
            let r0 = FleetConfig::initial_replication(spec);
            let demand = FleetConfig::tile_demand(spec, r0);
            let tiles = pool
                .acquire(i as u16, demand)
                .expect("validate() guaranteed the pool seats the initial demand");
            sims.push(Sim::new(&spec.profile, &spec.config));
            tenants.push(TenantState {
                replication: r0,
                replication_initial: r0,
                replication_peak: r0,
                tiles,
                tokens: if spec.rate_rps.is_finite() {
                    spec.bucket
                } else {
                    0.0
                },
                last_refill_ns: 0,
                borrowed: 0,
                shed_rate_limited: 0,
                shed_fleet_full: 0,
                evicted: 0,
                scale_ups: 0,
                scale_downs: 0,
                high_streak: 0,
                low_streak: 0,
            });
        }
        let horizon_ns = cfg
            .tenants
            .iter()
            .map(|t| t.config.duration_ns)
            .max()
            .unwrap_or(0);
        Ok(FleetSim {
            cfg,
            sims,
            tenants,
            pool,
            burst_pool: cfg.burst_budget,
            burst_borrowed: 0,
            burst_repaid: 0.0,
            next_tick_ns: cfg.autoscale.interval_ns,
            horizon_ns,
        })
    }

    fn total_queued(&self) -> usize {
        self.sims.iter().map(|s| s.queue.len()).sum()
    }

    /// Refills tenant `i`'s bucket up to `now`; overflow repays the
    /// shared burst pool (bounded by the budget).
    fn refill(&mut self, i: usize, now: u64) {
        let spec = &self.cfg.tenants[i];
        if !spec.rate_rps.is_finite() {
            return;
        }
        let st = &mut self.tenants[i];
        let dt = now.saturating_sub(st.last_refill_ns);
        st.last_refill_ns = now;
        if dt == 0 {
            return;
        }
        let refill = spec.rate_rps * dt as f64 * 1e-9;
        let new = st.tokens + refill;
        if new > spec.bucket {
            let spill = new - spec.bucket;
            st.tokens = spec.bucket;
            let repay = spill.min(self.cfg.burst_budget - self.burst_pool).max(0.0);
            self.burst_pool += repay;
            self.burst_repaid += repay;
        } else {
            st.tokens = new;
        }
    }

    /// Spends one admission token for tenant `i`, borrowing from the
    /// shared budget when its own bucket is empty. `true` when the
    /// arrival may proceed.
    fn take_token(&mut self, i: usize, now: u64) -> bool {
        if !self.cfg.tenants[i].rate_rps.is_finite() {
            return true;
        }
        self.refill(i, now);
        let st = &mut self.tenants[i];
        if st.tokens >= 1.0 {
            st.tokens -= 1.0;
            true
        } else if self.burst_pool >= 1.0 {
            self.burst_pool -= 1.0;
            st.borrowed += 1;
            self.burst_borrowed += 1;
            true
        } else {
            false
        }
    }

    /// The lowest-importance tenant (highest priority value, then highest
    /// index) with a non-empty queue and strictly lower priority than the
    /// arriving tenant — the eviction victim, if any.
    fn pick_victim(&self, arriving: usize) -> Option<usize> {
        let arriving_priority = self.cfg.tenants[arriving].priority;
        (0..self.sims.len())
            .filter(|&j| {
                self.cfg.tenants[j].priority > arriving_priority && !self.sims[j].queue.is_empty()
            })
            .max_by_key(|&j| (self.cfg.tenants[j].priority, j))
    }

    /// Fleet admission: the solo decision, then the token bucket, then
    /// the shared queue capacity with shed-low-priority-first eviction.
    fn fleet_arrival(&mut self, i: usize, now: u64) {
        let class = self.sims[i].next_arrival_class();
        let mut decision = self.sims[i].default_admission();
        if decision == AdmitDecision::Admit && !self.take_token(i, now) {
            self.tenants[i].shed_rate_limited += 1;
            decision = AdmitDecision::ShedFull;
        }
        if decision == AdmitDecision::Admit
            && self.cfg.shared_queue_capacity > 0
            && self.total_queued() >= self.cfg.shared_queue_capacity
        {
            if let Some(v) = self.pick_victim(i) {
                self.sims[v].evict_newest(now);
                self.tenants[v].evicted += 1;
                counters::add(Event::RequestsEvicted, 1);
            } else {
                if self.cfg.check_invariants {
                    // Shed ordering: a request is only ever shed at the
                    // shared-capacity gate when no strictly-lower-priority
                    // tenant had anything queued to evict.
                    let p = self.cfg.tenants[i].priority;
                    for j in 0..self.sims.len() {
                        assert!(
                            self.cfg.tenants[j].priority <= p || self.sims[j].queue.is_empty(),
                            "shed ordering violated: tenant {i} (priority {p}) shed while \
                             lower-priority tenant {j} had queued requests"
                        );
                    }
                }
                self.tenants[i].shed_fleet_full += 1;
                decision = AdmitDecision::ShedFull;
            }
        }
        self.sims[i].finish_arrival(now, class, decision);
    }

    /// Rescales tenant `i`'s stage service times to its current
    /// replication.
    fn rescale(&mut self, i: usize) {
        let r = self.tenants[i].replication;
        let spec = self.cfg.tenants.get(i).expect("tenant index in range");
        for (s, stage) in spec.profile.stages.iter().enumerate() {
            self.sims[i].set_stage_service_ns(s, scaled_service_ns(stage, r));
        }
    }

    /// One autoscaler sampling tick: per tenant, track sustained backlog
    /// and sustained idleness, scale up when backlog persists and tiles
    /// are free, scale down only when idle with nothing in flight.
    fn autoscale_tick(&mut self, now: u64) {
        let policy = self.cfg.autoscale;
        for i in 0..self.sims.len() {
            let depth = self.sims[i].queue.len();
            let inflight = self.sims[i].inflight;
            let busy = depth >= policy.up_depth;
            let idle = depth <= policy.down_depth && inflight == 0;
            {
                let st = &mut self.tenants[i];
                st.high_streak = if busy { st.high_streak + 1 } else { 0 };
                st.low_streak = if idle { st.low_streak + 1 } else { 0 };
            }
            let stages = self.cfg.tenants[i].profile.stages.len();
            if self.tenants[i].high_streak >= policy.sustain
                && self.tenants[i].replication < policy.max_replication
            {
                if let Some(mut granted) = self.pool.acquire(i as u16, stages) {
                    let st = &mut self.tenants[i];
                    st.tiles.append(&mut granted);
                    st.tiles.sort_unstable();
                    st.replication += 1;
                    st.replication_peak = st.replication_peak.max(st.replication);
                    st.scale_ups += 1;
                    st.high_streak = 0;
                    st.low_streak = 0;
                    counters::add(Event::FleetScaleUps, 1);
                    self.rescale(i);
                }
            } else if self.tenants[i].low_streak >= policy.sustain
                && self.tenants[i].replication > self.tenants[i].replication_initial
            {
                debug_assert_eq!(self.sims[i].inflight, 0);
                // Release the most-burdened owned tiles first, keeping
                // the tenant on the healthiest silicon it holds.
                let mut tiles = std::mem::take(&mut self.tenants[i].tiles);
                tiles.sort_by_key(|h| (self.pool.burden[h.0 as usize], h.0));
                let released: Vec<TileHandle> = tiles.split_off(tiles.len() - stages);
                self.tenants[i].tiles = tiles;
                let st = &mut self.tenants[i];
                st.replication -= 1;
                st.scale_downs += 1;
                st.low_streak = 0;
                self.pool.release(i as u16, &released);
                counters::add(Event::FleetScaleDowns, 1);
                self.rescale(i);
            }
        }
        let _ = now;
    }

    /// Full-state invariant check (enabled by
    /// [`FleetConfig::check_invariants`]): request conservation per
    /// tenant at the current virtual tick, exclusive tile ownership,
    /// burst-budget bounds, and replication bounds.
    fn check(&self) {
        for (i, sim) in self.sims.iter().enumerate() {
            assert_eq!(
                sim.arrivals,
                sim.admitted + sim.shed_full + sim.shed_deadline,
                "tenant {i}: arrivals must equal admitted + shed"
            );
            assert_eq!(
                sim.admitted,
                sim.completed + sim.queue.len() as u64 + sim.inflight,
                "tenant {i}: admitted must equal completed + queued + in-flight"
            );
            let st = &self.tenants[i];
            assert!(
                st.replication >= st.replication_initial
                    && (!self.cfg.autoscale.enabled
                        || st.replication <= self.cfg.autoscale.max_replication),
                "tenant {i}: replication {} out of bounds",
                st.replication
            );
            assert_eq!(
                st.tiles.len(),
                FleetConfig::tile_demand(&self.cfg.tenants[i], st.replication),
                "tenant {i}: owned tiles must match replication demand"
            );
            for h in &st.tiles {
                assert_eq!(
                    self.pool.owner(*h),
                    Some(i as u16),
                    "tenant {i}: pool disagrees about ownership of {h:?}"
                );
            }
        }
        let owned: usize = self.tenants.iter().map(|t| t.tiles.len()).sum();
        assert_eq!(
            owned + self.pool.free_count(),
            self.pool.total(),
            "tiles must be exactly partitioned into owned + free"
        );
        assert!(
            self.burst_pool >= 0.0 && self.burst_pool <= self.cfg.burst_budget + 1e-9,
            "burst pool {} outside [0, {}]",
            self.burst_pool,
            self.cfg.burst_budget
        );
    }

    fn run(&mut self) {
        for sim in &mut self.sims {
            sim.prime();
        }
        loop {
            // Earliest tenant event, ordered by (time, tenant index);
            // within a tenant the heap already orders by (time, seq).
            let next_event: Option<(u64, usize)> = self
                .sims
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.peek_key().map(|(t, _)| (t, i)))
                .min();
            let next_tick = if self.cfg.autoscale.enabled && self.next_tick_ns <= self.horizon_ns {
                Some(self.next_tick_ns)
            } else {
                None
            };
            // Ticks fire before same-timestamp tenant events: the
            // autoscaler samples the state *before* the instant's work.
            let tick_first = match (next_tick, next_event) {
                (Some(tick), Some((t, _))) => tick <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if tick_first {
                let t = self.next_tick_ns;
                self.next_tick_ns += self.cfg.autoscale.interval_ns;
                self.autoscale_tick(t);
            } else {
                let (_, i) = next_event.expect("an event exists on this branch");
                let (time, code) = self.sims[i].pop_event().expect("peeked event exists");
                if code == EV_ARRIVAL {
                    self.fleet_arrival(i, time);
                } else {
                    self.sims[i].dispatch(time, code);
                }
            }
            if self.cfg.check_invariants {
                self.check();
            }
        }
    }

    fn finish(self) -> FleetReport {
        let FleetSim {
            cfg,
            sims,
            tenants,
            pool,
            burst_pool,
            burst_borrowed,
            burst_repaid,
            ..
        } = self;
        // Merge per-priority completion latencies before the per-tenant
        // reports consume (and sort) the raw vectors.
        let mut priorities: Vec<u8> = cfg.tenants.iter().map(|t| t.priority).collect();
        priorities.sort_unstable();
        priorities.dedup();
        let mut class_latencies: Vec<Vec<u64>> = vec![Vec::new(); priorities.len()];
        for (spec, sim) in cfg.tenants.iter().zip(&sims) {
            let k = priorities
                .iter()
                .position(|&p| p == spec.priority)
                .expect("priority is in the deduped list");
            class_latencies[k].extend_from_slice(&sim.latencies);
        }
        let mut class_stats: Vec<FleetClassStat> = priorities
            .iter()
            .map(|&p| FleetClassStat {
                priority: p,
                tenants: 0,
                arrivals: 0,
                admitted: 0,
                shed: 0,
                completed: 0,
                goodput_rps: 0.0,
                latency: LatencyStats::default(),
            })
            .collect();
        let mut tenant_reports = Vec::with_capacity(sims.len());
        for ((spec, st), sim) in cfg.tenants.iter().zip(tenants).zip(sims) {
            let report = sim.into_report();
            let k = priorities
                .iter()
                .position(|&p| p == spec.priority)
                .expect("priority is in the deduped list");
            class_stats[k].tenants += 1;
            class_stats[k].arrivals += report.arrivals;
            class_stats[k].admitted += report.admitted;
            class_stats[k].shed += report.shed();
            class_stats[k].completed += report.completed;
            tenant_reports.push(TenantReport {
                name: spec.name.clone(),
                priority: spec.priority,
                replication_initial: st.replication_initial as u64,
                replication_final: st.replication as u64,
                replication_peak: st.replication_peak as u64,
                tiles: st.tiles.iter().map(|h| h.0).collect(),
                scale_ups: st.scale_ups,
                scale_downs: st.scale_downs,
                borrowed_tokens: st.borrowed,
                shed_rate_limited: st.shed_rate_limited,
                shed_fleet_full: st.shed_fleet_full,
                evicted: st.evicted,
                report,
            });
        }
        let end_ns = tenant_reports
            .iter()
            .map(|t| t.report.end_ns)
            .max()
            .unwrap_or(0);
        let end_s = end_ns.max(1) as f64 / 1e9;
        for (k, stat) in class_stats.iter_mut().enumerate() {
            stat.latency = LatencyStats::compute(&mut class_latencies[k]);
            stat.goodput_rps = stat.completed as f64 / end_s;
        }
        let duration_ns = cfg
            .tenants
            .iter()
            .map(|t| t.config.duration_ns)
            .max()
            .unwrap_or(0);
        FleetReport {
            duration_ns,
            end_ns,
            pool_tiles: pool.total() as u64,
            tiles_owned: tenant_reports.iter().map(|t| t.tiles.len() as u64).sum(),
            free_tiles_min: pool.min_free() as u64,
            burst_budget: cfg.burst_budget,
            burst_borrowed,
            burst_repaid,
            burst_pool_final: burst_pool,
            scale_ups: tenant_reports.iter().map(|t| t.scale_ups).sum(),
            scale_downs: tenant_reports.iter().map(|t| t.scale_downs).sum(),
            tenants: tenant_reports,
            classes: class_stats,
        }
    }
}

/// Runs one fleet simulation to completion (arrival horizon plus drain)
/// and returns its measurements.
///
/// Pure in `cfg`: bit-identical on every call, at any thread count and
/// under any kernel backend, because all state lives on the virtual
/// clock.
pub fn simulate_fleet(cfg: &FleetConfig) -> Result<FleetReport, SeiError> {
    let _trace = trace::scope("serve", || {
        format!(
            "fleet tenants={} pool={} autoscale={}",
            cfg.tenants.len(),
            cfg.effective_pool_tiles(),
            cfg.autoscale.enabled
        )
    });
    let mut fleet = FleetSim::new(cfg)?;
    fleet.run();
    Ok(fleet.finish())
}

/// One grid point of a fleet saturation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCell {
    /// Display label of the point (e.g. the load fraction).
    pub label: String,
    /// Offered fleet load as a fraction of one tenant's saturation
    /// (recorded for reporting; absolute rates live in the configs).
    pub load_fraction: f64,
    /// The fleet configuration to simulate.
    pub config: FleetConfig,
}

/// A simulated fleet grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPoint {
    /// The cell's label.
    pub label: String,
    /// Offered fleet load fraction.
    pub load_fraction: f64,
    /// The run's measurements.
    pub report: FleetReport,
}

/// Simulates every fleet cell on the engine and returns points in cell
/// order — byte-identical at any `SEI_THREADS`, like [`crate::run_sweep`].
///
/// All configurations are validated up front so a malformed grid fails
/// before any work is spawned.
pub fn run_fleet_sweep(engine: &Engine, cells: &[FleetCell]) -> Result<Vec<FleetPoint>, SeiError> {
    for cell in cells {
        cell.config.validate()?;
    }
    let reports: Vec<Result<FleetReport, SeiError>> =
        engine.map(cells, |cell| simulate_fleet(&cell.config));
    cells
        .iter()
        .zip(reports)
        .map(|(cell, report)| {
            Ok(FleetPoint {
                label: cell.label.clone(),
                load_fraction: cell.load_fraction,
                report: report?,
            })
        })
        .collect()
}

/// Builds the per-tenant load model of one fleet grid point from a
/// [`FleetTenantArg`]: `weight / total_weight` of the offered rate,
/// steady Poisson at `burst_mult == 1`, otherwise periodic bursts at
/// `burst_mult ×` the mean with the mean preserved (bursts cover a
/// quarter of each period, eight periods per horizon).
#[must_use]
pub fn tenant_load_model(
    arg: &FleetTenantArg,
    total_weight: f64,
    offered_rps: f64,
    duration_ns: u64,
) -> LoadModel {
    let mean = offered_rps * arg.weight / total_weight;
    if arg.burst_mult <= 1.0 {
        return LoadModel::Poisson { rate_rps: mean };
    }
    let burst_fraction = 0.25;
    let burst_rps = arg.burst_mult * mean;
    // Solve mean = fraction·burst + (1-fraction)·base for the base rate;
    // burst_mult ≤ 4 (enforced at parse) keeps it positive.
    let base_rps = (mean - burst_fraction * burst_rps) / (1.0 - burst_fraction);
    LoadModel::Burst {
        base_rps,
        burst_rps,
        period_ns: (duration_ns / 8).max(1),
        burst_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::ClassMix;
    use crate::sim::{simulate, BatchPolicy};

    fn profile() -> ServiceProfile {
        ServiceProfile::new(
            vec![
                StageProfile::new("conv1", 1000.0),
                StageProfile::new("conv2", 400.0),
                StageProfile::new("fc", 100.0),
            ],
            2.5e-6,
        )
    }

    fn config(rate_mult: f64, seed: u64) -> ServeConfig {
        ServeConfig {
            load: LoadModel::Poisson {
                rate_rps: rate_mult * 1e6,
            },
            classes: ClassMix::default(),
            batch: BatchPolicy {
                max_size: 8,
                timeout_ns: 20_000,
            },
            queue_capacity: 128,
            deadline_ns: 0,
            duration_ns: 10_000_000,
            seed,
        }
    }

    #[test]
    fn tile_pool_grants_least_burdened_first_and_owns_exclusively() {
        let mut pool = TilePool::with_burdens(vec![9, 0, 5, 0, 2]);
        let a = pool.acquire(0, 3).unwrap();
        assert_eq!(a, vec![TileHandle(1), TileHandle(3), TileHandle(4)]);
        let b = pool.acquire(1, 2).unwrap();
        assert_eq!(b, vec![TileHandle(0), TileHandle(2)]);
        assert!(pool.acquire(2, 1).is_none(), "pool exhausted");
        for h in &a {
            assert_eq!(pool.owner(*h), Some(0));
        }
        pool.release(1, &b);
        assert_eq!(pool.free_count(), 2);
        assert_eq!(pool.min_free(), 0);
    }

    #[test]
    #[should_panic(expected = "released by tenant")]
    fn releasing_someone_elses_tile_panics() {
        let mut pool = TilePool::new(2);
        let a = pool.acquire(0, 1).unwrap();
        pool.release(1, &a);
    }

    #[test]
    fn degenerate_fleet_reproduces_solo_simulation_exactly() {
        let p = profile();
        let cfg = config(1.3, 17); // overload: shedding engages
        let solo = simulate(&p, &cfg).unwrap();
        let fleet = simulate_fleet(&FleetConfig::solo(TenantSpec::new("only", 0, p, cfg))).unwrap();
        assert_eq!(fleet.tenants.len(), 1);
        assert_eq!(fleet.tenants[0].report, solo);
        assert_eq!(
            fleet.tenants[0].report.to_json().to_json(),
            solo.to_json().to_json(),
            "degenerate fleet must render byte-identical NDJSON"
        );
        assert_eq!(fleet.tenants[0].evicted, 0);
        assert_eq!(fleet.tenants[0].shed_rate_limited, 0);
        assert_eq!(fleet.pool_tiles, 3, "auto-sized to 3 stages × 1 replica");
    }

    #[test]
    fn fleet_mix_parses_and_rejects() {
        let mix: FleetMix = "interactive:0:3,batch:1:1:4:1.2:16".parse().unwrap();
        assert_eq!(mix.tenants.len(), 2);
        assert_eq!(mix.tenants[0].name, "interactive");
        assert_eq!(mix.tenants[0].priority, 0);
        assert!((mix.tenants[0].weight - 3.0).abs() < 1e-12);
        assert!(mix.tenants[0].rate_frac.is_infinite());
        assert!((mix.tenants[1].burst_mult - 4.0).abs() < 1e-12);
        assert!((mix.tenants[1].rate_frac - 1.2).abs() < 1e-12);
        assert!((mix.tenants[1].bucket - 16.0).abs() < 1e-12);
        for bad in [
            "",
            "a",
            "a:0",
            "a:x:1",
            "a:0:0",
            "a:0:-1",
            "a:0:nan",
            "a:0:1:0.5",
            "a:0:1:9",
            "a:0:1:1:0",
            "a:0:1:1:inf:0.5",
            "a:0:1,a:1:1",
            "a:0:1,,b:1:1",
            "a:0:1:1:1:1:1",
        ] {
            assert!(bad.parse::<FleetMix>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn autoscale_policy_parses_and_rejects() {
        let off: AutoscalePolicy = "off".parse().unwrap();
        assert!(!off.enabled);
        let on: AutoscalePolicy = "12:1:3:500:4".parse().unwrap();
        assert!(on.enabled);
        assert_eq!(on.up_depth, 12);
        assert_eq!(on.down_depth, 1);
        assert_eq!(on.sustain, 3);
        assert_eq!(on.interval_ns, 500_000);
        assert_eq!(on.max_replication, 4);
        let four: AutoscalePolicy = "8:2:2:100".parse().unwrap();
        assert_eq!(four.max_replication, 8, "default ceiling");
        for bad in [
            "",
            "on",
            "1:2:3",
            "0:0:3:500",
            "4:4:3:500",
            "4:1:0:500",
            "4:1:3:0",
            "4:1:3:500:0",
            "x:1:3:500",
            "4:1:3:500:4:9",
        ] {
            assert!(
                bad.parse::<AutoscalePolicy>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn scaled_service_is_exact_at_base_and_uses_design_rounding() {
        // A design-derived stage: 576 computes at base replication 2 →
        // 288 cycles, reads = 576.
        let stage = StageProfile {
            name: "conv".into(),
            service_ns: 288.0 * 110.0,
            replication: 2,
            reads: 576,
            energy_j: 0.0,
            fault: None,
        };
        assert_eq!(scaled_service_ns(&stage, 2), 288.0 * 110.0);
        assert_eq!(scaled_service_ns(&stage, 4), 144.0 * 110.0);
        assert_eq!(scaled_service_ns(&stage, 5), 116.0 * 110.0, "ceil rounding");
        // Synthetic stage (no read attribution): proportional scaling.
        let synth = StageProfile::new("s", 1000.0);
        assert_eq!(scaled_service_ns(&synth, 1), 1000.0);
        assert_eq!(scaled_service_ns(&synth, 4), 250.0);
    }

    #[test]
    fn fleet_config_validation_rejects_bad_setups() {
        let p = profile();
        let ok = FleetConfig::solo(TenantSpec::new("a", 0, p.clone(), config(0.5, 1)));
        assert!(ok.validate().is_ok());
        let mut dup = ok.clone();
        dup.tenants.push(dup.tenants[0].clone());
        assert!(dup.validate().is_err(), "duplicate name");
        let mut small = ok.clone();
        small.pool_tiles = 2; // 3 stages need 3 tiles
        assert!(small.validate().is_err(), "pool too small");
        let mut burdens = ok.clone();
        burdens.tile_burdens = vec![1, 2];
        assert!(burdens.validate().is_err(), "burden length mismatch");
        let mut rate = ok.clone();
        rate.tenants[0].rate_rps = 0.0;
        assert!(rate.validate().is_err(), "zero rate");
        let mut bucket = ok.clone();
        bucket.tenants[0].rate_rps = 100.0;
        bucket.tenants[0].bucket = 0.0;
        assert!(bucket.validate().is_err(), "empty bucket with finite rate");
        let mut empty = ok;
        empty.tenants.clear();
        assert!(empty.validate().is_err(), "no tenants");
    }

    #[test]
    fn token_bucket_limits_admissions_and_borrowing_is_bounded() {
        let p = profile();
        // Offered ~0.8 rps × 1e6 over 10 ms ≈ 8000 arrivals; the bucket
        // allows 100 + 10 ms × 2e5/s = 2100 of its own tokens plus at
        // most the 50-token shared budget.
        let spec = TenantSpec::new("limited", 0, p, config(0.8, 23)).with_rate_limit(2e5, 100.0);
        let mut cfg = FleetConfig::solo(spec);
        cfg.burst_budget = 50.0;
        cfg.check_invariants = true;
        let r = simulate_fleet(&cfg).unwrap();
        let t = &r.tenants[0];
        assert!(t.shed_rate_limited > 0, "rate limiter must engage: {t:?}");
        assert!(
            t.report.admitted as f64 <= 100.0 + 2100.0 + 50.0 + 1.0,
            "admitted {} exceeds bucket + refill + budget",
            t.report.admitted
        );
        assert_eq!(r.burst_borrowed, t.borrowed_tokens);
        assert!(r.burst_borrowed as f64 <= 50.0 + r.burst_repaid + 1e-9);
        assert!(r.burst_pool_final >= 0.0 && r.burst_pool_final <= 50.0);
        // Rate-limit sheds are folded into the tenant's backpressure
        // count, so its own conservation law still holds.
        assert_eq!(
            t.report.arrivals,
            t.report.admitted + t.report.shed_full + t.report.shed_deadline
        );
    }

    #[test]
    fn overload_sheds_low_priority_first() {
        let p = profile();
        // High-priority steady tenant at 40% of saturation; low-priority
        // tenant at 120% — together well past capacity of the shared
        // queue.
        let hp = TenantSpec::new("interactive", 0, p.clone(), config(0.4, 7));
        let lp = TenantSpec::new("batch", 1, p.clone(), config(1.2, 8));
        let mut cfg = FleetConfig {
            tenants: vec![hp, lp],
            pool_tiles: 0,
            tile_burdens: Vec::new(),
            shared_queue_capacity: 48,
            burst_budget: 0.0,
            autoscale: AutoscalePolicy::default(),
            check_invariants: true,
        };
        let r = simulate_fleet(&cfg).unwrap();
        let hp_r = &r.tenants[0];
        let lp_r = &r.tenants[1];
        assert_eq!(hp_r.evicted, 0, "high priority is never evicted");
        assert!(
            lp_r.evicted > 0 || lp_r.report.shed() > 0,
            "low priority absorbs the overload: {lp_r:?}"
        );
        assert!(r.evicted() == lp_r.evicted);
        // The high-priority tenant's own view matches its solo run.
        cfg.tenants.truncate(1);
        cfg.shared_queue_capacity = 0;
        let solo = simulate_fleet(&cfg).unwrap();
        let solo_hp = &solo.tenants[0].report;
        assert!(
            hp_r.report.latency.p99_ns as f64 <= solo_hp.latency.p99_ns as f64 * 1.10,
            "fleet p99 {} vs solo p99 {}",
            hp_r.report.latency.p99_ns,
            solo_hp.latency.p99_ns
        );
        assert!(
            hp_r.report.throughput_rps >= solo_hp.throughput_rps * 0.90,
            "fleet goodput {} vs solo {}",
            hp_r.report.throughput_rps,
            solo_hp.throughput_rps
        );
    }

    #[test]
    fn autoscaler_scales_up_under_backlog_and_back_down_when_idle() {
        let p = profile();
        // Bursty load: a heavy burst then quiet — forces scale-up then
        // scale-down within one horizon.
        let mut c = config(0.0, 31);
        c.load = LoadModel::Burst {
            base_rps: 0.05e6,
            burst_rps: 2.5e6,
            period_ns: 5_000_000,
            burst_fraction: 0.3,
        };
        let spec = TenantSpec::new("bursty", 0, p, c);
        let mut cfg = FleetConfig::solo(spec);
        cfg.pool_tiles = 12; // headroom for 4× replication of 3 stages
        cfg.autoscale = "8:1:2:200:4".parse().unwrap();
        cfg.check_invariants = true;
        let r = simulate_fleet(&cfg).unwrap();
        let t = &r.tenants[0];
        assert!(t.scale_ups > 0, "backlog must trigger scale-up: {t:?}");
        assert!(
            t.replication_peak > t.replication_initial,
            "peak {} vs initial {}",
            t.replication_peak,
            t.replication_initial
        );
        assert!(t.scale_downs > 0, "idle gaps must scale back down: {t:?}");
        // Scale-down never strands work: everything admitted completes.
        assert_eq!(t.report.completed, t.report.admitted);
        assert_eq!(r.scale_ups, t.scale_ups);
    }

    #[test]
    fn fleet_report_json_is_stable_and_tagged() {
        let p = profile();
        let cfg = FleetConfig::solo(TenantSpec::new("only", 2, p, config(0.5, 3)));
        let r = simulate_fleet(&cfg).unwrap();
        let a = r.to_json().to_json();
        let b = simulate_fleet(&cfg).unwrap().to_json().to_json();
        assert_eq!(a, b, "bit-identical across calls");
        assert!(a.contains("\"tenants\":[{\"name\":\"only\""), "{a}");
        assert!(a.contains("\"classes\":[{\"priority\":2"), "{a}");
        assert!(a.contains("\"pool_tiles\":3"), "{a}");
    }
}
