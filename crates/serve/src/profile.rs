//! Service profile: what the mapped accelerator looks like to the
//! serving layer.
//!
//! A [`ServiceProfile`] reduces a mapped design to the quantities the
//! discrete-event scheduler needs: one pipeline stage per weighted layer
//! with a per-inference service time (from
//! [`sei_mapping::timing::DesignTiming`], which already folds in the
//! crossbar replication factor), the per-inference energy (from
//! [`sei_cost::CostReport`]), and optionally a stuck-at fault descriptor
//! per stage tile ([`StageFault`], built from a [`sei_faults::FaultMap`])
//! marking that tile as serving at reduced accuracy.
//!
//! # Tile identity is pool-relative
//!
//! A profile never names physical tiles. Stage indices are positions in
//! the tenant's own pipeline, and the number of physical tiles a profile
//! occupies is a *demand* ([`ServiceProfile::tile_demand`]: one tile per
//! stage per replica) that the fleet layer satisfies from a shared
//! [`crate::fleet::TilePool`], returning opaque pool-relative
//! [`crate::fleet::TileHandle`]s. The same profile can therefore be
//! mapped by several tenants at once, each on a disjoint tile set, and a
//! tenant's tiles can move (autoscaling, fault remap) without the
//! profile changing.

use sei_cost::CostReport;
use sei_faults::FaultMap;
use sei_mapping::timing::DesignTiming;
use serde::{Deserialize, Serialize};

/// Stuck-at fault burden of one stage tile. A faulted tile still serves
/// (the fault-aware mapping keeps it functional) but at reduced accuracy,
/// so completions that passed through it are counted as degraded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFault {
    /// Cells pinned by stuck-at faults on this tile.
    pub stuck_cells: u64,
    /// Fraction of the tile's cells that are stuck.
    pub stuck_fraction: f64,
}

impl StageFault {
    /// Summarizes a generated fault map into a stage-tile descriptor.
    pub fn from_map(map: &FaultMap) -> StageFault {
        let cells = (map.rows() * map.cols()).max(1) as f64;
        StageFault {
            stuck_cells: map.count() as u64,
            stuck_fraction: map.count() as f64 / cells,
        }
    }
}

/// One pipeline stage (a replicated layer tile group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Layer display name ("Conv 1", …).
    pub name: String,
    /// Service time per inference at this stage (ns), replication
    /// already applied.
    pub service_ns: f64,
    /// Crossbar replication factor behind this stage.
    pub replication: usize,
    /// Crossbar read (compute) operations per inference across the
    /// stage's replicated tiles — `cycles × replication` of the timing
    /// analysis, so it is replication-invariant for a fixed layer.
    #[serde(default)]
    pub reads: u64,
    /// Energy per inference attributable to this stage (J), from the
    /// layer's cost breakdown.
    #[serde(default)]
    pub energy_j: f64,
    /// Stuck-at fault burden of the tile, if it is fault-degraded.
    pub fault: Option<StageFault>,
}

impl StageProfile {
    /// A healthy stage with unit replication and no attributed
    /// reads/energy (synthetic profiles, tests).
    pub fn new(name: &str, service_ns: f64) -> StageProfile {
        StageProfile {
            name: name.to_string(),
            service_ns,
            replication: 1,
            reads: 0,
            energy_j: 0.0,
            fault: None,
        }
    }
}

/// The mapped design as the serving layer sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Pipeline stages in network order.
    pub stages: Vec<StageProfile>,
    /// Energy per completed inference (J) — the Table 5 quantity.
    pub energy_per_inference_j: f64,
}

impl ServiceProfile {
    /// Builds a profile from explicit stages (tests, synthetic designs).
    pub fn new(stages: Vec<StageProfile>, energy_per_inference_j: f64) -> ServiceProfile {
        ServiceProfile {
            stages,
            energy_per_inference_j,
        }
    }

    /// Derives the profile of a mapped design: stage service times from
    /// the timing analysis (replication folded in), per-inference energy
    /// from the cost report — both in total and attributed per stage,
    /// since timing and cost analyze the same plan layer-by-layer.
    pub fn from_design(timing: &DesignTiming, cost: &CostReport) -> ServiceProfile {
        let stages = timing
            .layers
            .iter()
            .zip(&cost.layers)
            .map(|(l, c)| StageProfile {
                name: l.name.clone(),
                service_ns: l.latency_ns,
                replication: l.replication,
                reads: l.cycles.saturating_mul(l.replication as u64),
                energy_j: c.total_energy(),
                fault: None,
            })
            .collect();
        ServiceProfile {
            stages,
            energy_per_inference_j: cost.total_energy_j(),
        }
    }

    /// Marks stage `index` as served by a fault-degraded tile.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_stage_fault(mut self, index: usize, map: &FaultMap) -> ServiceProfile {
        self.stages[index].fault = Some(StageFault::from_map(map));
        self
    }

    /// Service time of the slowest stage (ns) — the pipeline bottleneck.
    pub fn bottleneck_ns(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.service_ns)
            .fold(0.0f64, f64::max)
    }

    /// Sum of all stage service times (ns): the zero-load latency of a
    /// single inference (pipeline fill).
    pub fn pipeline_fill_ns(&self) -> f64 {
        self.stages.iter().map(|s| s.service_ns).sum()
    }

    /// Saturation throughput (inferences/s): the slowest-stage bound,
    /// matching [`DesignTiming::throughput_pps`].
    pub fn max_throughput_rps(&self) -> f64 {
        let b = self.bottleneck_ns();
        if b <= 0.0 {
            0.0
        } else {
            1e9 / b
        }
    }

    /// Whether any stage tile is fault-degraded.
    pub fn degraded(&self) -> bool {
        self.stages.iter().any(|s| s.fault.is_some())
    }

    /// Physical tiles this profile occupies at crossbar replication
    /// `replication`: one tile per stage per replica. This is the demand
    /// a fleet tenant places on the shared tile pool — the profile holds
    /// no physical tile identities of its own (see the module docs).
    pub fn tile_demand(&self, replication: usize) -> usize {
        self.stages.len() * replication.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sei_faults::FaultModel;

    fn three_stage() -> ServiceProfile {
        ServiceProfile::new(
            vec![
                StageProfile::new("a", 1000.0),
                StageProfile::new("b", 250.0),
                StageProfile::new("c", 50.0),
            ],
            1e-6,
        )
    }

    #[test]
    fn bottleneck_and_fill() {
        let p = three_stage();
        assert_eq!(p.bottleneck_ns(), 1000.0);
        assert_eq!(p.pipeline_fill_ns(), 1300.0);
        assert!((p.max_throughput_rps() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn fault_marks_stage_degraded() {
        let map = FaultMap::generate(32, 32, &FaultModel::uniform(0.1), 9);
        let p = three_stage().with_stage_fault(1, &map);
        assert!(p.degraded());
        let f = p.stages[1].fault.unwrap();
        assert_eq!(f.stuck_cells as usize, map.count());
        assert!(f.stuck_fraction > 0.0 && f.stuck_fraction < 1.0);
    }

    #[test]
    fn empty_profile_has_zero_throughput() {
        let p = ServiceProfile::new(vec![], 0.0);
        assert_eq!(p.max_throughput_rps(), 0.0);
    }

    #[test]
    fn tile_demand_is_stages_times_replicas() {
        let p = three_stage();
        assert_eq!(p.tile_demand(1), 3);
        assert_eq!(p.tile_demand(4), 12);
        // Replication 0 is treated as the degenerate single replica so a
        // mapped profile always demands at least its stage count.
        assert_eq!(p.tile_demand(0), 3);
    }
}
