//! Property-based tests of the fleet scheduler: conservation laws,
//! exclusive tile ownership, shed ordering, token-bucket bounds, and
//! autoscaling safety.
//!
//! Every run here sets [`FleetConfig::check_invariants`], which asserts
//! the structural invariants *after every event on the virtual clock* —
//! request conservation (admitted = completed + queued + in-flight at
//! every tick), the tile-partition property (no tile owned by two tenants,
//! owned + free = pool), the burst-pool bound, and shed ordering at each
//! capacity shed — so a passing test certifies the invariants held at
//! every intermediate state, not just at the end of the run.

use proptest::prelude::*;
use sei_serve::{
    simulate, simulate_fleet, AutoscalePolicy, BatchPolicy, FleetConfig, LoadModel, ServeConfig,
    ServiceProfile, StageProfile, TenantSpec,
};

fn profile(bottleneck_ns: f64) -> ServiceProfile {
    ServiceProfile::new(
        vec![
            StageProfile::new("conv1", bottleneck_ns),
            StageProfile::new("conv2", bottleneck_ns * 0.4),
            StageProfile::new("fc", bottleneck_ns * 0.1),
        ],
        2.5e-6,
    )
}

fn config(load_mult: f64, seed: u64, capacity: usize) -> ServeConfig {
    ServeConfig {
        load: LoadModel::Poisson {
            rate_rps: load_mult * 1e6,
        },
        classes: Default::default(),
        batch: BatchPolicy {
            max_size: 8,
            timeout_ns: 20_000,
        },
        queue_capacity: capacity,
        deadline_ns: 0,
        duration_ns: 10_000_000,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Request conservation and the tile-partition invariant hold at
    /// every virtual tick of an adversarial two-tenant mix (checked
    /// inside the simulation), and the final accounting closes: every
    /// arrival is admitted or shed, every admitted request completes
    /// after the drain, and reruns are bit-identical.
    #[test]
    fn conservation_and_exclusive_tiles_at_every_tick(
        seed in 0u64..500,
        hp_load in 0.2f64..0.8,
        lp_load in 0.5f64..2.0,
        shared_cap in 16usize..96,
    ) {
        let cfg = FleetConfig {
            tenants: vec![
                TenantSpec::new("hp", 0, profile(1000.0), config(hp_load, seed, 64)),
                TenantSpec::new("lp", 1, profile(1000.0), config(lp_load, seed + 1, 64)),
            ],
            pool_tiles: 0,
            tile_burdens: Vec::new(),
            shared_queue_capacity: shared_cap,
            burst_budget: 0.0,
            autoscale: AutoscalePolicy::default(),
            check_invariants: true,
        };
        let r = simulate_fleet(&cfg).unwrap();
        for t in &r.tenants {
            prop_assert_eq!(
                t.report.arrivals,
                t.report.admitted + t.report.shed_full + t.report.shed_deadline
            );
            prop_assert_eq!(t.report.completed, t.report.admitted);
        }
        // The pool is exactly partitioned and tile sets are disjoint.
        let mut all_tiles: Vec<u32> = r.tenants.iter().flat_map(|t| t.tiles.clone()).collect();
        let before = all_tiles.len();
        all_tiles.sort_unstable();
        all_tiles.dedup();
        prop_assert_eq!(all_tiles.len(), before, "a tile is owned twice");
        prop_assert_eq!(r.tiles_owned as usize, before);
        prop_assert!(r.tiles_owned <= r.pool_tiles);
        let again = simulate_fleet(&cfg).unwrap();
        prop_assert_eq!(r, again);
    }

    /// Shed ordering respects priority class: the most-important tenant
    /// is never evicted (eviction victims must have *strictly lower*
    /// priority than the arriving tenant), and every capacity shed of a
    /// high-priority arrival is certified in-sim to have happened only
    /// when no lower-priority victim existed.
    #[test]
    fn shed_ordering_respects_priority_class(
        seed in 0u64..500,
        hp_load in 0.3f64..0.9,
        lp_load in 0.9f64..2.5,
        shared_cap in 8usize..48,
    ) {
        let cfg = FleetConfig {
            tenants: vec![
                TenantSpec::new("hp", 0, profile(1000.0), config(hp_load, seed, 64)),
                TenantSpec::new("mid", 1, profile(1000.0), config(lp_load, seed + 1, 64)),
                TenantSpec::new("lo", 2, profile(1000.0), config(lp_load, seed + 2, 64)),
            ],
            pool_tiles: 0,
            tile_burdens: Vec::new(),
            shared_queue_capacity: shared_cap,
            burst_budget: 0.0,
            autoscale: AutoscalePolicy::default(),
            check_invariants: true,
        };
        let r = simulate_fleet(&cfg).unwrap();
        prop_assert_eq!(r.tenants[0].evicted, 0, "top priority must never be evicted");
        // Evictions land on lower classes only; totals stay consistent.
        let evicted: u64 = r.tenants.iter().map(|t| t.evicted).sum();
        prop_assert_eq!(evicted, r.evicted());
        for t in &r.tenants {
            prop_assert!(t.evicted + t.shed_fleet_full <= t.report.shed_full);
        }
    }

    /// Token-bucket borrowing never exceeds the shared burst budget:
    /// tokens borrowed over the whole run are bounded by the budget plus
    /// whatever refill overflow repaid it, and the pool level stays in
    /// `[0, budget]` (asserted after every event in-sim).
    #[test]
    fn token_bucket_borrowing_never_exceeds_budget(
        seed in 0u64..500,
        load in 0.5f64..2.0,
        rate_frac in 0.2f64..1.2,
        bucket in 1.0f64..64.0,
        budget in 0.0f64..128.0,
    ) {
        let offered = load * 1e6;
        let spec = TenantSpec::new("limited", 0, profile(1000.0), config(load, seed, 64))
            .with_rate_limit(rate_frac * offered, bucket);
        let mut cfg = FleetConfig::solo(spec);
        cfg.burst_budget = budget;
        cfg.check_invariants = true;
        let r = simulate_fleet(&cfg).unwrap();
        let t = &r.tenants[0];
        prop_assert!(
            (r.burst_borrowed as f64) <= budget + r.burst_repaid + 1e-6,
            "borrowed {} vs budget {} + repaid {}",
            r.burst_borrowed, budget, r.burst_repaid
        );
        prop_assert!(r.burst_pool_final >= 0.0 && r.burst_pool_final <= budget + 1e-9);
        // A rate-limit shed is still a shed: conservation closes.
        prop_assert_eq!(
            t.report.arrivals,
            t.report.admitted + t.report.shed_full + t.report.shed_deadline
        );
        prop_assert!(t.shed_rate_limited <= t.report.shed_full);
        prop_assert_eq!(t.report.completed, t.report.admitted);
    }

    /// Replication is monotone in sustained backlog: under the same
    /// policy and horizon, a clearly overloaded tenant reaches a peak
    /// replication at least as high as a clearly underloaded one.
    #[test]
    fn autoscaling_is_monotone_in_sustained_backlog(
        seed in 0u64..500,
        low in 0.2f64..0.5,
        high in 1.5f64..3.0,
        sustain in 1u32..4,
    ) {
        let policy = AutoscalePolicy {
            enabled: true,
            up_depth: 8,
            down_depth: 1,
            sustain,
            interval_ns: 200_000,
            max_replication: 4,
        };
        let run = |mult: f64| {
            let mut cfg = FleetConfig::solo(TenantSpec::new(
                "t", 0, profile(1000.0), config(mult, seed, 64),
            ));
            cfg.pool_tiles = 12;
            cfg.autoscale = policy;
            cfg.check_invariants = true;
            simulate_fleet(&cfg).unwrap()
        };
        let quiet = run(low);
        let busy = run(high);
        prop_assert!(
            busy.tenants[0].replication_peak >= quiet.tenants[0].replication_peak,
            "peak under load {} vs idle {}",
            busy.tenants[0].replication_peak,
            quiet.tenants[0].replication_peak
        );
        prop_assert!(busy.scale_ups >= quiet.scale_ups);
    }

    /// Scale-down never strands in-flight batches: whatever the load and
    /// policy, every admitted request completes once the pipeline drains
    /// (the scheduler only releases tiles when the tenant has nothing in
    /// flight), and replication never falls below the initial grant.
    #[test]
    fn scale_down_never_strands_in_flight_batches(
        seed in 0u64..500,
        load in 0.1f64..2.5,
        up_depth in 4usize..24,
        interval_us in 50u64..500,
    ) {
        let mut cfg = FleetConfig::solo(TenantSpec::new(
            "t", 0, profile(1000.0), config(load, seed, 64),
        ));
        cfg.pool_tiles = 12;
        cfg.autoscale = AutoscalePolicy {
            enabled: true,
            up_depth,
            down_depth: 1,
            sustain: 2,
            interval_ns: interval_us * 1_000,
            max_replication: 4,
        };
        cfg.check_invariants = true;
        let r = simulate_fleet(&cfg).unwrap();
        let t = &r.tenants[0];
        prop_assert_eq!(t.report.completed, t.report.admitted);
        prop_assert!(t.replication_final >= t.replication_initial);
        prop_assert!(t.replication_peak <= 4);
        prop_assert_eq!(t.scale_ups, r.scale_ups);
    }

    /// The degenerate single-tenant fleet reproduces the solo simulator
    /// byte-for-byte: same report struct, same NDJSON bytes, for any
    /// load, batch policy and queue bound.
    #[test]
    fn degenerate_fleet_reproduces_solo_ndjson(
        seed in 0u64..500,
        load in 0.1f64..2.0,
        batch_max in 1usize..16,
        capacity in 8usize..128,
        timeout_us in 1u64..50,
    ) {
        let p = profile(1000.0);
        let mut c = config(load, seed, capacity);
        c.batch = BatchPolicy {
            max_size: batch_max,
            timeout_ns: timeout_us * 1_000,
        };
        let solo = simulate(&p, &c).unwrap();
        let fleet = simulate_fleet(&FleetConfig::solo(TenantSpec::new("only", 0, p, c))).unwrap();
        prop_assert_eq!(&fleet.tenants[0].report, &solo);
        prop_assert_eq!(
            fleet.tenants[0].report.to_json().to_json(),
            solo.to_json().to_json()
        );
    }
}
