//! Concurrency contract of the max-merged serve counters.
//!
//! `queue_depth_peak` is written with `counters::record_max`, a CAS loop
//! over concurrently simulated sweep cells. Max-merge is commutative and
//! associative, so the recorded peak must be exactly the max over the
//! cells' individual peaks — at any thread count, under any
//! interleaving. This lives in its own integration-test binary so the
//! process-global counter registry is not raced by unrelated tests.

use sei_engine::Engine;
use sei_serve::{
    run_sweep, BatchPolicy, LoadModel, ServeConfig, ServiceProfile, StageProfile, SweepCell,
};
use sei_telemetry::counters::{self, Event};
use std::sync::Mutex;

/// Both tests mutate the process-global counter registry; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

/// A grid whose cells reach visibly different queue peaks: overload
/// fractions climb well past saturation at several queue capacities.
fn grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &load in &[0.5f64, 1.3, 2.0, 3.0] {
        for &capacity in &[8usize, 32, 128] {
            let profile = ServiceProfile::new(
                vec![
                    StageProfile::new("conv", 900.0),
                    StageProfile::new("fc", 300.0),
                ],
                1e-6,
            );
            let config = ServeConfig {
                load: LoadModel::Poisson {
                    rate_rps: load * profile.max_throughput_rps(),
                },
                classes: Default::default(),
                batch: BatchPolicy {
                    max_size: 4,
                    timeout_ns: 50_000,
                },
                queue_capacity: capacity,
                deadline_ns: 0,
                duration_ns: 10_000_000,
                seed: 17,
            };
            cells.push(SweepCell {
                load_fraction: load,
                batch_max: 4,
                replication: 1,
                profile,
                config,
            });
        }
    }
    cells
}

#[test]
fn queue_depth_peak_is_thread_invariant() {
    let _guard = LOCK.lock().unwrap();
    let grid = grid();
    let mut recorded = Vec::new();
    for threads in [1usize, 4, 7] {
        counters::set_enabled(true);
        counters::reset();
        let points = run_sweep(&Engine::new(threads), &grid).unwrap();
        let peak = counters::get(Event::QueueDepthPeak);
        // The global counter is exactly the max over per-cell peaks…
        let expected = points
            .iter()
            .map(|p| p.report.peak_queue_depth)
            .max()
            .unwrap();
        assert_eq!(peak, expected, "threads={threads}");
        recorded.push(peak);
        // …and the additive counters are exactly the per-cell sums, even
        // though cells on different engine threads interleave their adds.
        assert_eq!(
            counters::get(Event::RequestsAdmitted),
            points.iter().map(|p| p.report.admitted).sum::<u64>(),
            "threads={threads}"
        );
        assert_eq!(
            counters::get(Event::BatchesFormed),
            points.iter().map(|p| p.report.batches).sum::<u64>(),
            "threads={threads}"
        );
    }
    // Deep queues actually engaged: the peak saturates the largest bound.
    assert_eq!(recorded[0], 128);
    assert!(recorded.windows(2).all(|w| w[0] == w[1]), "{recorded:?}");
    counters::reset();
    counters::set_enabled(false);
}

#[test]
fn record_max_survives_raw_thread_contention() {
    let _guard = LOCK.lock().unwrap();
    counters::set_enabled(true);
    counters::reset();
    let mut expected = 0;
    for t in 0..8u64 {
        for i in 0..10_000u64 {
            expected = expected.max((i * 37 + t * 13) % 4999);
        }
    }
    std::thread::scope(|s| {
        for t in 0..8u64 {
            s.spawn(move || {
                for i in 0..10_000u64 {
                    counters::record_max(Event::QueueDepthPeak, (i * 37 + t * 13) % 4999);
                }
            });
        }
    });
    assert_eq!(counters::get(Event::QueueDepthPeak), expected);
    counters::reset();
    counters::set_enabled(false);
}
