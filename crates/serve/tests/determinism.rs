//! Integration tests: the serving layer driven by a real mapped design,
//! the engine-invariance contract, and property-based conservation laws.

use proptest::prelude::*;
use sei_cost::{CostParams, CostReport};
use sei_engine::Engine;
use sei_mapping::layout::DesignPlan;
use sei_mapping::timing::{DesignTiming, TimingModel};
use sei_mapping::{DesignConstraints, Structure};
use sei_nn::paper;
use sei_serve::{
    run_fleet_sweep, run_sweep, simulate, AutoscalePolicy, BatchPolicy, FleetCell, FleetConfig,
    LoadModel, ServeConfig, ServiceProfile, SweepCell, TenantSpec,
};

fn design_profile(replication: usize) -> ServiceProfile {
    let net = paper::network1(0);
    let plan = DesignPlan::plan(
        &net,
        paper::INPUT_SHAPE,
        Structure::Sei,
        &DesignConstraints::paper_default(),
    );
    let timing = DesignTiming::analyze(&plan, &TimingModel::default(), replication);
    let cost = CostReport::analyze(&plan, &CostParams::default());
    ServiceProfile::from_design(&timing, &cost)
}

#[test]
fn profile_matches_timing_analysis() {
    let net = paper::network1(0);
    let plan = DesignPlan::plan(
        &net,
        paper::INPUT_SHAPE,
        Structure::Sei,
        &DesignConstraints::paper_default(),
    );
    let timing = DesignTiming::analyze(&plan, &TimingModel::default(), 4);
    let cost = CostReport::analyze(&plan, &CostParams::default());
    let profile = ServiceProfile::from_design(&timing, &cost);
    assert_eq!(profile.stages.len(), timing.layers.len());
    assert!((profile.max_throughput_rps() - timing.throughput_pps()).abs() < 1e-9);
    assert!((profile.pipeline_fill_ns() - timing.latency_ns()).abs() < 1e-9);
    assert!((profile.energy_per_inference_j - cost.total_energy_j()).abs() < 1e-18);
    // Per-stage attribution: reads come from the timing cycles with the
    // replication factor folded back out, energy from the per-layer cost
    // rows (which sum to the total minus the input-fetch share).
    for (stage, layer) in profile.stages.iter().zip(&timing.layers) {
        assert_eq!(stage.reads, layer.cycles * layer.replication as u64);
        assert!(stage.reads > 0, "{stage:?}");
        assert!(stage.energy_j > 0.0, "{stage:?}");
    }
    let per_stage: f64 = profile.stages.iter().map(|s| s.energy_j).sum();
    assert!(
        per_stage <= profile.energy_per_inference_j,
        "stage energies {per_stage} exceed total {}",
        profile.energy_per_inference_j
    );
}

fn sweep_grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &replication in &[1usize, 4] {
        let profile = design_profile(replication);
        let saturation = profile.max_throughput_rps();
        for &load in &[0.5f64, 1.5] {
            for &batch_max in &[1usize, 4] {
                cells.push(SweepCell {
                    load_fraction: load,
                    batch_max,
                    replication,
                    profile: profile.clone(),
                    config: ServeConfig {
                        load: LoadModel::Poisson {
                            rate_rps: load * saturation,
                        },
                        classes: "interactive:4,batch:1".parse().unwrap(),
                        batch: BatchPolicy {
                            max_size: batch_max,
                            timeout_ns: 200_000,
                        },
                        queue_capacity: 64,
                        deadline_ns: 0,
                        duration_ns: 400_000_000,
                        seed: 21,
                    },
                });
            }
        }
    }
    cells
}

/// The acceptance contract of the serving subsystem: the whole sweep —
/// including its JSON rendering — is bit-identical at any thread count.
#[test]
fn design_sweep_is_bit_identical_across_thread_counts() {
    let grid = sweep_grid();
    let reference = run_sweep(&Engine::single(), &grid).unwrap();
    let reference_json: Vec<String> = reference
        .iter()
        .map(|p| p.report.to_json().to_json())
        .collect();
    for threads in [2, 4, 7] {
        let got = run_sweep(&Engine::new(threads), &grid).unwrap();
        assert_eq!(got, reference, "threads={threads}");
        let got_json: Vec<String> = got.iter().map(|p| p.report.to_json().to_json()).collect();
        assert_eq!(got_json, reference_json, "threads={threads}");
    }
}

/// Past saturation the design sheds load instead of queueing without
/// bound; below saturation it sheds nothing.
#[test]
fn design_saturation_behavior() {
    let points = run_sweep(&Engine::single(), &sweep_grid()).unwrap();
    for p in &points {
        if p.load_fraction < 1.0 {
            assert_eq!(p.report.shed(), 0, "{p:?}");
        } else {
            assert!(p.report.shed() > 0, "{p:?}");
            // Goodput is capped by the slowest-stage bound (with a little
            // headroom for the drain tail after the arrival horizon).
            assert!(
                p.report.throughput_rps < 1.1 * p.saturation_rps,
                "goodput {} vs saturation {}",
                p.report.throughput_rps,
                p.saturation_rps
            );
        }
    }
    // Replication raises the saturation throughput, so the replicated
    // design completes more work under identical overload.
    let base = points
        .iter()
        .find(|p| p.replication == 1 && p.load_fraction == 1.5 && p.batch_max == 4)
        .unwrap();
    let repl = points
        .iter()
        .find(|p| p.replication == 4 && p.load_fraction == 1.5 && p.batch_max == 4)
        .unwrap();
    assert!(repl.saturation_rps > 3.0 * base.saturation_rps);
    assert!(repl.report.completed > base.report.completed);
}

fn fleet_grid() -> Vec<FleetCell> {
    let profile = design_profile(2);
    let saturation = profile.max_throughput_rps();
    let mut cells = Vec::new();
    for &(label, lp_load, autoscale) in &[
        ("steady", 0.6f64, false),
        ("overload", 1.6, false),
        ("overload-autoscale", 1.6, true),
    ] {
        let mk = |name: &str, priority: u8, load: f64, seed: u64| {
            TenantSpec::new(
                name,
                priority,
                profile.clone(),
                ServeConfig {
                    load: LoadModel::Poisson {
                        rate_rps: load * saturation,
                    },
                    classes: "interactive:4,batch:1".parse().unwrap(),
                    batch: BatchPolicy {
                        max_size: 4,
                        timeout_ns: 200_000,
                    },
                    queue_capacity: 64,
                    deadline_ns: 0,
                    duration_ns: 200_000_000,
                    seed,
                },
            )
        };
        cells.push(FleetCell {
            label: label.to_string(),
            load_fraction: 0.4 + lp_load,
            config: FleetConfig {
                tenants: vec![mk("interactive", 0, 0.4, 21), mk("batch", 1, lp_load, 22)],
                pool_tiles: if autoscale { 24 } else { 0 },
                tile_burdens: Vec::new(),
                shared_queue_capacity: 96,
                burst_budget: 16.0,
                autoscale: if autoscale {
                    "8:1:2:500:3".parse().unwrap()
                } else {
                    AutoscalePolicy::default()
                },
                check_invariants: false,
            },
        });
    }
    cells
}

/// The fleet acceptance contract: a multi-tenant classed sweep —
/// including its `sei-serve-fleet/v1` JSON rendering — is bit-identical
/// at any thread count.
#[test]
fn fleet_sweep_is_bit_identical_across_thread_counts() {
    let grid = fleet_grid();
    let reference = run_fleet_sweep(&Engine::single(), &grid).unwrap();
    let reference_json: Vec<String> = reference
        .iter()
        .map(|p| p.report.to_json().to_json())
        .collect();
    for threads in [2, 4, 7] {
        let got = run_fleet_sweep(&Engine::new(threads), &grid).unwrap();
        assert_eq!(got, reference, "threads={threads}");
        let got_json: Vec<String> = got.iter().map(|p| p.report.to_json().to_json()).collect();
        assert_eq!(got_json, reference_json, "threads={threads}");
    }
    // The adversarial mix behaves as designed: under overload the
    // low-priority tenant absorbs the shedding and the high-priority
    // tenant keeps its goodput.
    let overload = &reference[1].report;
    assert!(overload.tenants[1].evicted > 0 || overload.tenants[1].report.shed() > 0);
    assert_eq!(overload.tenants[0].evicted, 0);
    let autoscaled = &reference[2].report;
    assert!(autoscaled.scale_ups > 0, "{autoscaled:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation laws hold for any load/batch/queue configuration:
    /// every arrival is admitted or shed, every admitted request
    /// completes once the pipeline drains, and reruns are bit-identical.
    #[test]
    fn conservation_and_determinism(
        seed in 0u64..1000,
        load_mult in 0.1f64..2.5,
        batch_max in 1usize..16,
        capacity in 1usize..64,
        timeout_us in 1u64..100,
    ) {
        let profile = design_profile(2);
        let cfg = ServeConfig {
            load: LoadModel::Poisson {
                rate_rps: load_mult * profile.max_throughput_rps(),
            },
            classes: "a:2,b:1".parse().unwrap(),
            batch: BatchPolicy {
                max_size: batch_max,
                timeout_ns: timeout_us * 1000,
            },
            queue_capacity: capacity,
            deadline_ns: 0,
            duration_ns: 50_000_000,
            seed,
        };
        let r = simulate(&profile, &cfg).unwrap();
        prop_assert_eq!(r.arrivals, r.admitted + r.shed_full + r.shed_deadline);
        prop_assert_eq!(r.completed, r.admitted);
        prop_assert!(r.peak_queue_depth as usize <= capacity);
        // Conservation holds per class too, and the class rows partition
        // the global counters.
        prop_assert_eq!(r.classes.iter().map(|c| c.arrivals).sum::<u64>(), r.arrivals);
        prop_assert_eq!(r.classes.iter().map(|c| c.shed).sum::<u64>(), r.shed());
        prop_assert_eq!(r.classes.iter().map(|c| c.completed).sum::<u64>(), r.completed);
        for c in &r.classes {
            prop_assert_eq!(c.arrivals, c.shed + c.completed);
        }
        prop_assert_eq!(r.latency_hist.count, r.completed);
        prop_assert_eq!(r.batch_hist.count, r.batches);
        prop_assert!(r.latency.p50_ns <= r.latency.p95_ns);
        prop_assert!(r.latency.p95_ns <= r.latency.p99_ns);
        prop_assert!(r.latency.p99_ns <= r.latency.max_ns);
        let again = simulate(&profile, &cfg).unwrap();
        prop_assert_eq!(r, again);
    }
}
