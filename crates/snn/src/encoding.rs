//! Input spike encoding: turning an analog image into 1-bit spike frames.
//!
//! Two rate codes are provided:
//!
//! * **Bernoulli** — at each timestep, pixel `p ∈ [0, 1]` spikes with
//!   probability `p` (independent across timesteps). The classic
//!   stochastic scheme; unbiased but noisy at small window lengths.
//! * **Phased** — deterministic error-diffusion: a per-pixel accumulator
//!   adds `p` each step and emits a spike whenever it crosses 1. The
//!   spike count over `T` steps is `⌊p·T⌋` or `⌈p·T⌉`, giving the lowest
//!   possible rate-coding error for a given window.

use rand::rngs::StdRng;
use rand::Rng;
use sei_nn::Tensor3;
use sei_quantize::BitTensor;
use serde::{Deserialize, Serialize};

/// Which input encoding a spiking network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InputEncoding {
    /// Independent Bernoulli spikes with rate = pixel intensity.
    Bernoulli,
    /// Deterministic error-diffusion rate code.
    #[default]
    Phased,
}

/// A generator of per-timestep spike frames for one image.
#[derive(Debug, Clone)]
pub struct SpikeTrain {
    intensities: Tensor3,
    encoding: InputEncoding,
    /// Error-diffusion accumulators (phased mode).
    accum: Vec<f32>,
}

impl SpikeTrain {
    /// Creates a spike train for an image whose values lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any pixel is outside `[0, 1]`.
    pub fn new(image: &Tensor3, encoding: InputEncoding) -> Self {
        assert!(
            image.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "pixel intensities must be in [0, 1]"
        );
        SpikeTrain {
            intensities: image.clone(),
            encoding,
            accum: vec![0.0; image.len()],
        }
    }

    /// Emits the next spike frame.
    pub fn next_frame(&mut self, rng: &mut StdRng) -> BitTensor {
        let (c, h, w) = self.intensities.shape();
        let bits = match self.encoding {
            InputEncoding::Bernoulli => self
                .intensities
                .as_slice()
                .iter()
                .map(|&p| p > 0.0 && rng.gen_bool(f64::from(p).clamp(0.0, 1.0)))
                .collect(),
            InputEncoding::Phased => self
                .intensities
                .as_slice()
                .iter()
                .zip(self.accum.iter_mut())
                .map(|(&p, acc)| {
                    *acc += p;
                    if *acc >= 1.0 - 1e-6 {
                        *acc -= 1.0;
                        true
                    } else {
                        false
                    }
                })
                .collect(),
        };
        BitTensor::from_vec(c, h, w, bits)
    }

    /// The encoding in use.
    pub fn encoding(&self) -> InputEncoding {
        self.encoding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn image(values: &[f32]) -> Tensor3 {
        Tensor3::from_flat(values.to_vec())
    }

    #[test]
    fn bernoulli_rate_matches_intensity() {
        let img = image(&[0.0, 0.25, 0.75, 1.0]);
        let mut train = SpikeTrain::new(&img, InputEncoding::Bernoulli);
        let mut rng = StdRng::seed_from_u64(1);
        let t = 4000;
        let mut counts = [0u32; 4];
        for _ in 0..t {
            let frame = train.next_frame(&mut rng);
            for (c, &b) in counts.iter_mut().zip(frame.as_slice()) {
                *c += u32::from(b);
            }
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], t);
        assert!((counts[1] as f32 / t as f32 - 0.25).abs() < 0.03);
        assert!((counts[2] as f32 / t as f32 - 0.75).abs() < 0.03);
    }

    #[test]
    fn phased_count_is_floor_or_ceil_of_rate_times_window() {
        let img = image(&[0.0, 0.3, 0.5, 0.9, 1.0]);
        let mut train = SpikeTrain::new(&img, InputEncoding::Phased);
        let mut rng = StdRng::seed_from_u64(0);
        let t = 10usize;
        let mut counts = [0usize; 5];
        for _ in 0..t {
            let frame = train.next_frame(&mut rng);
            for (c, &b) in counts.iter_mut().zip(frame.as_slice()) {
                *c += usize::from(b);
            }
        }
        for (i, &p) in [0.0f32, 0.3, 0.5, 0.9, 1.0].iter().enumerate() {
            let expect = p * t as f32;
            assert!(
                (counts[i] as f32 - expect).abs() <= 1.0,
                "pixel {p}: {} spikes over {t} steps",
                counts[i]
            );
        }
    }

    #[test]
    fn phased_is_deterministic() {
        let img = image(&[0.37, 0.62]);
        let mut a = SpikeTrain::new(&img, InputEncoding::Phased);
        let mut b = SpikeTrain::new(&img, InputEncoding::Phased);
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(999); // rng unused in phased mode
        for _ in 0..20 {
            assert_eq!(a.next_frame(&mut rng1), b.next_frame(&mut rng2));
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_pixels_rejected() {
        let img = image(&[1.5]);
        let _ = SpikeTrain::new(&img, InputEncoding::Phased);
    }
}
