//! The spiking network: a 1-bit-quantized CNN run in the time domain.
//!
//! Conversion from a [`QuantizedNetwork`] is direct because the hardware
//! substrate is identical: an SEI crossbar gated by a spike vector computes
//! exactly the selective weight sum `Σ_{spike_j} w_ij + b_i` that an IF
//! neuron integrates each timestep. The ANN's layer threshold `θ` becomes
//! the IF firing threshold, so a neuron's spike *rate* approximates
//! `preact/θ` — a graded generalization of the ANN's 1-bit `preact > θ`
//! decision that converges to (and often slightly beats) the quantized
//! network as the time window grows.
//!
//! Differences from the CNN pipeline:
//!
//! * the **input layer also takes 1-bit data** (spike frames), so even the
//!   §3.2 input DACs disappear — the whole pipeline is converter-free
//!   except the classifier readout;
//! * max pooling is an OR of spikes per timestep;
//! * the classifier integrates charge over the window without firing and
//!   the class is the argmax of accumulated charge.

use crate::encoding::{InputEncoding, SpikeTrain};
use crate::neuron::IfNeuronLayer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sei_nn::{Conv2d, Linear, Tensor3};
use sei_quantize::qnet::{conv_binary_preact, fc_binary_preact, QLayer, QuantizedNetwork};
use sei_quantize::BitTensor;
use sei_telemetry::counters::{self, Event};
use serde::{Deserialize, Serialize};

/// Configuration of a spiking run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnnConfig {
    /// Input spike encoding.
    pub encoding: InputEncoding,
    /// Per-step membrane leak factor (1.0 = pure integrate-and-fire).
    pub leak: f32,
    /// RNG seed (Bernoulli encoding only).
    pub seed: u64,
}

impl Default for SnnConfig {
    fn default() -> Self {
        SnnConfig {
            encoding: InputEncoding::default(),
            leak: 1.0,
            seed: 0,
        }
    }
}

/// One stage of the spiking pipeline.
#[derive(Debug, Clone)]
enum SpikeLayer {
    /// Convolution integrated by IF neurons (first or hidden — both take
    /// spike frames).
    Conv {
        conv: Conv2d,
        threshold: f32,
        out_neurons: usize,
        out_shape: (usize, usize, usize),
    },
    /// Per-timestep OR pooling of spikes.
    PoolOr { size: usize },
    /// Reshape.
    Flatten,
    /// Hidden FC integrated by IF neurons.
    Fc { linear: Linear, threshold: f32 },
    /// Output FC: non-firing charge accumulator.
    Output { linear: Linear },
}

/// Per-run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeStats {
    /// Total spikes emitted per spiking layer (input frames excluded).
    pub spikes_per_layer: Vec<u64>,
    /// Input spikes presented.
    pub input_spikes: u64,
    /// Timesteps simulated.
    pub timesteps: usize,
}

/// A rate-coded spiking realization of a quantized network.
#[derive(Debug, Clone)]
pub struct SpikingNetwork {
    layers: Vec<SpikeLayer>,
    cfg: SnnConfig,
    input_shape: (usize, usize, usize),
}

impl SpikingNetwork {
    /// Converts a quantized network (for the paper's 28×28 input shape).
    pub fn from_quantized(qnet: &QuantizedNetwork, cfg: SnnConfig) -> Self {
        Self::from_quantized_with_input(qnet, cfg, sei_nn::paper::INPUT_SHAPE)
    }

    /// Converts a quantized network with an explicit input shape.
    ///
    /// # Panics
    ///
    /// Panics if the quantized network contains a layer kind the spiking
    /// pipeline cannot express.
    pub fn from_quantized_with_input(
        qnet: &QuantizedNetwork,
        cfg: SnnConfig,
        input_shape: (usize, usize, usize),
    ) -> Self {
        let mut layers = Vec::with_capacity(qnet.layers().len());
        let mut shape = input_shape;
        for layer in qnet.layers() {
            match layer {
                QLayer::AnalogConv { conv, threshold } | QLayer::BinaryConv { conv, threshold } => {
                    let out_shape = (
                        conv.out_channels(),
                        shape.1 - conv.kernel() + 1,
                        shape.2 - conv.kernel() + 1,
                    );
                    layers.push(SpikeLayer::Conv {
                        conv: conv.clone(),
                        threshold: *threshold,
                        out_neurons: out_shape.0 * out_shape.1 * out_shape.2,
                        out_shape,
                    });
                    shape = out_shape;
                }
                QLayer::PoolOr { size } => {
                    layers.push(SpikeLayer::PoolOr { size: *size });
                    shape = (shape.0, shape.1 / size, shape.2 / size);
                }
                QLayer::Flatten => {
                    layers.push(SpikeLayer::Flatten);
                    shape = (shape.0 * shape.1 * shape.2, 1, 1);
                }
                QLayer::BinaryFc { linear, threshold } => {
                    shape = (linear.out_features(), 1, 1);
                    layers.push(SpikeLayer::Fc {
                        linear: linear.clone(),
                        threshold: *threshold,
                    });
                }
                QLayer::OutputFc { linear } => {
                    shape = (linear.out_features(), 1, 1);
                    layers.push(SpikeLayer::Output {
                        linear: linear.clone(),
                    });
                }
            }
        }
        SpikingNetwork {
            layers,
            cfg,
            input_shape,
        }
    }

    /// The configured input shape.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input_shape
    }

    /// Runs the network on an image for `timesteps` steps, returning the
    /// accumulated class charge and spike statistics.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0` or the image shape mismatches.
    pub fn run(&self, image: &Tensor3, timesteps: usize) -> (Tensor3, SpikeStats) {
        assert!(timesteps > 0, "need at least one timestep");
        assert_eq!(image.shape(), self.input_shape, "input shape");
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut train = SpikeTrain::new(image, self.cfg.encoding);

        // Per-layer IF state and output accumulator.
        let mut if_states: Vec<Option<IfNeuronLayer>> = self
            .layers
            .iter()
            .map(|l| match l {
                SpikeLayer::Conv {
                    threshold,
                    out_neurons,
                    ..
                } => Some(IfNeuronLayer::new(*out_neurons, *threshold, self.cfg.leak)),
                SpikeLayer::Fc { linear, threshold } => Some(IfNeuronLayer::new(
                    linear.out_features(),
                    *threshold,
                    self.cfg.leak,
                )),
                _ => None,
            })
            .collect();
        let out_classes = match self.layers.last() {
            Some(SpikeLayer::Output { linear }) => linear.out_features(),
            _ => panic!("spiking network must end with an output layer"),
        };
        let mut charge = vec![0.0f32; out_classes];
        let mut stats = SpikeStats {
            spikes_per_layer: vec![0; self.layers.len()],
            input_spikes: 0,
            timesteps,
        };

        for _ in 0..timesteps {
            let mut spikes = train.next_frame(&mut rng);
            stats.input_spikes += spikes.count_ones() as u64;
            for (li, layer) in self.layers.iter().enumerate() {
                match layer {
                    SpikeLayer::Conv {
                        conv, out_shape, ..
                    } => {
                        let preact = conv_binary_preact(conv, &spikes);
                        let fired = if_states[li]
                            .as_mut()
                            .expect("conv has IF state")
                            .step(preact.as_slice());
                        stats.spikes_per_layer[li] += fired.iter().filter(|&&b| b).count() as u64;
                        spikes = BitTensor::from_vec(out_shape.0, out_shape.1, out_shape.2, fired);
                    }
                    SpikeLayer::PoolOr { size } => {
                        spikes = spikes.pool_or(*size);
                    }
                    SpikeLayer::Flatten => {
                        let n = spikes.len();
                        spikes = BitTensor::from_vec(n, 1, 1, spikes.to_flat_vec());
                    }
                    SpikeLayer::Fc { linear, .. } => {
                        let preact = fc_binary_preact(linear, &spikes);
                        let fired = if_states[li]
                            .as_mut()
                            .expect("fc has IF state")
                            .step(preact.as_slice());
                        stats.spikes_per_layer[li] += fired.iter().filter(|&&b| b).count() as u64;
                        let n = fired.len();
                        spikes = BitTensor::from_vec(n, 1, 1, fired);
                    }
                    SpikeLayer::Output { linear } => {
                        let preact = fc_binary_preact(linear, &spikes);
                        for (c, &v) in charge.iter_mut().zip(preact.as_slice()) {
                            *c += v;
                        }
                        // spikes unused beyond this point in the chain.
                    }
                }
            }
        }

        // In the SEI-SNN view every input spike toggles a transmission
        // gate and every IF neuron fire is a sense-amp decision; batch
        // both into the telemetry counters once per run.
        counters::add(Event::GateSwitches, stats.input_spikes);
        counters::add(
            Event::SenseAmpFires,
            stats.spikes_per_layer.iter().sum::<u64>(),
        );

        (Tensor3::from_flat(charge), stats)
    }

    /// Classifies an image over a `timesteps`-step window.
    pub fn classify(&self, image: &Tensor3, timesteps: usize) -> usize {
        self.run(image, timesteps).0.argmax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sei_nn::data::SynthConfig;
    use sei_nn::metrics::error_rate_with;
    use sei_nn::paper;
    use sei_nn::train::{TrainConfig, Trainer};
    use sei_quantize::algorithm1::{quantize_network, QuantizeConfig};

    fn quantized_net2() -> (QuantizedNetwork, sei_nn::data::Dataset) {
        let train = SynthConfig::new(1200, 51).generate();
        let test = SynthConfig::new(250, 52).generate();
        let mut net = paper::network2(7);
        Trainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .fit(&mut net, &train);
        let q = quantize_network(
            &net,
            &train.truncated(250),
            &QuantizeConfig::default(),
            sei_quantize::Engine::single(),
        )
        .unwrap();
        (q.net, test)
    }

    #[test]
    fn structure_conversion() {
        let (qnet, _) = quantized_net2();
        let snn = SpikingNetwork::from_quantized(&qnet, SnnConfig::default());
        assert_eq!(snn.layers.len(), qnet.layers().len());
        assert_eq!(snn.input_shape(), (1, 28, 28));
    }

    #[test]
    fn deterministic_with_phased_encoding() {
        let (qnet, test) = quantized_net2();
        let snn = SpikingNetwork::from_quantized(&qnet, SnnConfig::default());
        let (img, _) = test.sample(0);
        let a = snn.run(img, 6).0;
        let b = snn.run(img, 6).0;
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_improves_with_window_and_approaches_quantized() {
        let (qnet, test) = quantized_net2();
        let snn = SpikingNetwork::from_quantized(&qnet, SnnConfig::default());
        let subset = test.truncated(120);
        let q_err = error_rate_with(&subset, |img| qnet.classify(img));
        let err_at = |t: usize| error_rate_with(&subset, |img| snn.classify(img, t));
        let e1 = err_at(1);
        let e12 = err_at(12);
        assert!(
            e12 <= e1 + 0.02,
            "longer window should not be worse: T=1 {e1}, T=12 {e12}"
        );
        assert!(
            e12 <= q_err + 0.15,
            "T=12 spiking error {e12} too far from quantized {q_err}"
        );
    }

    #[test]
    fn spike_stats_accumulate() {
        let (qnet, test) = quantized_net2();
        let snn = SpikingNetwork::from_quantized(&qnet, SnnConfig::default());
        let (img, _) = test.sample(3);
        let (_, stats) = snn.run(img, 5);
        assert_eq!(stats.timesteps, 5);
        assert!(stats.input_spikes > 0);
        // Conv layers should emit some spikes on a real image.
        assert!(stats.spikes_per_layer.iter().sum::<u64>() > 0);
    }

    #[test]
    fn bernoulli_encoding_runs() {
        let (qnet, test) = quantized_net2();
        let snn = SpikingNetwork::from_quantized(
            &qnet,
            SnnConfig {
                encoding: InputEncoding::Bernoulli,
                ..SnnConfig::default()
            },
        );
        let (img, _) = test.sample(1);
        assert!(snn.classify(img, 8) < 10);
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn zero_timesteps_rejected() {
        let (qnet, test) = quantized_net2();
        let snn = SpikingNetwork::from_quantized(&qnet, SnnConfig::default());
        let _ = snn.run(test.sample(0).0, 0);
    }
}
