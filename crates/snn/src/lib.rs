//! Spiking-neural-network extension of the SEI structure — the paper's
//! stated future-work direction (§6: "We will also use the proposed
//! structure to support other applications using 1-bit data like
//! RRAM-based Spiking Neural Networks").
//!
//! The observation is that the SEI crossbar is *already* a spiking
//! substrate: its rows are gated by 1-bit signals, so a spike train can
//! drive it directly — and unlike the CNN case (§3.2), the **input layer's
//! DACs disappear too**, because rate-coded input spikes are 1-bit.
//!
//! This crate converts a 1-bit-quantized network
//! ([`sei_quantize::QuantizedNetwork`]) into a rate-coded spiking network:
//!
//! * [`encoding`] — input spike generation: Bernoulli rate coding (the
//!   classic stochastic scheme) and deterministic phased rate coding;
//! * [`neuron`] — integrate-and-fire dynamics with subtractive reset and
//!   optional leak;
//! * [`network`] — the [`SpikingNetwork`]: each weighted layer accumulates
//!   per-timestep selective weight sums (exactly what an SEI crossbar
//!   computes for a spike vector) into IF membranes; pooling ORs spikes;
//!   the classifier accumulates analog membrane charge over the window.
//!
//! # Example
//!
//! ```
//! use sei_nn::{data::SynthConfig, paper, train::{Trainer, TrainConfig}};
//! use sei_quantize::algorithm1::{quantize_network, QuantizeConfig};
//! use sei_snn::{SnnConfig, SpikingNetwork};
//!
//! let train = SynthConfig::new(400, 1).generate();
//! let mut net = paper::network2(42);
//! Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() })
//!     .fit(&mut net, &train);
//! let engine = sei_quantize::Engine::single();
//! let q = quantize_network(&net, &train.truncated(100), &QuantizeConfig::default(), engine)
//!     .expect("valid quantize configuration");
//!
//! let snn = SpikingNetwork::from_quantized(&q.net, SnnConfig::default());
//! let class = snn.classify(train.sample(0).0, 7);
//! assert!(class < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod network;
pub mod neuron;

pub use encoding::{InputEncoding, SpikeTrain};
pub use network::{SnnConfig, SpikingNetwork};
pub use neuron::IfNeuronLayer;
