//! Integrate-and-fire neuron layers.
//!
//! Each neuron accumulates the per-timestep weighted input into a membrane
//! potential; when the membrane crosses the firing threshold the neuron
//! emits a spike and the threshold is *subtracted* (soft reset, which
//! preserves the super-threshold residue and gives the best ANN→SNN rate
//! fidelity). An optional multiplicative leak models membrane decay.

use serde::{Deserialize, Serialize};

/// State of one layer of IF neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfNeuronLayer {
    membranes: Vec<f32>,
    threshold: f32,
    leak: f32,
}

impl IfNeuronLayer {
    /// Creates a layer of `n` neurons with the given firing threshold and
    /// per-step leak factor (1.0 = no leak).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive or `leak` is outside `(0, 1]`.
    pub fn new(n: usize, threshold: f32, leak: f32) -> Self {
        assert!(threshold > 0.0, "IF threshold must be positive");
        assert!(leak > 0.0 && leak <= 1.0, "leak must be in (0, 1]");
        IfNeuronLayer {
            membranes: vec![0.0; n],
            threshold,
            leak,
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.membranes.len()
    }

    /// Whether the layer has no neurons.
    pub fn is_empty(&self) -> bool {
        self.membranes.is_empty()
    }

    /// The firing threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Borrows the membrane potentials.
    pub fn membranes(&self) -> &[f32] {
        &self.membranes
    }

    /// Integrates one timestep of input charge and returns the spike
    /// pattern (soft reset: threshold subtracted on fire).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != len()`.
    pub fn step(&mut self, input: &[f32]) -> Vec<bool> {
        assert_eq!(input.len(), self.membranes.len(), "input length");
        self.membranes
            .iter_mut()
            .zip(input)
            .map(|(v, &x)| {
                *v = *v * self.leak + x;
                if *v > self.threshold {
                    *v -= self.threshold;
                    true
                } else {
                    false
                }
            })
            .collect()
    }

    /// Resets all membranes to zero (between input presentations).
    pub fn reset(&mut self) {
        self.membranes.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_drive_fires_at_rate_proportional_to_input() {
        // Input x per step against threshold θ → rate ≈ x/θ (soft reset).
        let mut layer = IfNeuronLayer::new(1, 1.0, 1.0);
        let mut spikes = 0;
        let t = 1000;
        for _ in 0..t {
            if layer.step(&[0.3])[0] {
                spikes += 1;
            }
        }
        let rate = spikes as f32 / t as f32;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn subthreshold_input_never_fires_without_accumulation_reset() {
        let mut layer = IfNeuronLayer::new(1, 10.0, 1.0);
        for step in 0..9 {
            assert!(!layer.step(&[1.0])[0], "fired too early at {step}");
        }
        // 10th step crosses 10.0? membrane = 10.0, strict > → not yet.
        assert!(!layer.step(&[1.0])[0]);
        assert!(layer.step(&[1.0])[0]);
    }

    #[test]
    fn soft_reset_preserves_residue() {
        let mut layer = IfNeuronLayer::new(1, 1.0, 1.0);
        assert!(layer.step(&[1.7])[0]);
        assert!((layer.membranes()[0] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn leak_decays_membrane() {
        let mut layer = IfNeuronLayer::new(1, 10.0, 0.5);
        let _ = layer.step(&[4.0]); // v = 4
        let _ = layer.step(&[0.0]); // v = 2
        assert!((layer.membranes()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn negative_input_depresses() {
        let mut layer = IfNeuronLayer::new(1, 1.0, 1.0);
        let _ = layer.step(&[0.8]);
        let _ = layer.step(&[-0.5]);
        assert!((layer.membranes()[0] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn reset_zeroes_state() {
        let mut layer = IfNeuronLayer::new(3, 1.0, 1.0);
        let _ = layer.step(&[0.5, 0.9, 0.1]);
        layer.reset();
        assert!(layer.membranes().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = IfNeuronLayer::new(1, 0.0, 1.0);
    }
}
