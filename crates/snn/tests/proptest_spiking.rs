//! Property tests for the spiking substrate: rate-coding fidelity and IF
//! neuron invariants for arbitrary parameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sei_nn::Tensor3;
use sei_snn::encoding::{InputEncoding, SpikeTrain};
use sei_snn::neuron::IfNeuronLayer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Phased coding is exact to within one spike for any intensity and
    /// window.
    #[test]
    fn phased_rate_exact_to_one_spike(
        p in 0.0f32..1.0,
        t in 1usize..64,
    ) {
        let img = Tensor3::from_flat(vec![p]);
        let mut train = SpikeTrain::new(&img, InputEncoding::Phased);
        let mut rng = StdRng::seed_from_u64(0);
        let mut count = 0usize;
        for _ in 0..t {
            if train.next_frame(&mut rng).as_slice()[0] {
                count += 1;
            }
        }
        let expect = p * t as f32;
        prop_assert!(
            (count as f32 - expect).abs() <= 1.0,
            "p={p} T={t}: {count} spikes, expected ~{expect}"
        );
    }

    /// IF firing rate under constant drive equals drive/threshold (clamped
    /// to one spike per step), for any positive drive and threshold.
    #[test]
    fn if_rate_matches_theory(
        drive in 0.01f32..2.0,
        theta in 0.05f32..2.0,
    ) {
        let mut layer = IfNeuronLayer::new(1, theta, 1.0);
        let t = 2000;
        let mut spikes = 0usize;
        for _ in 0..t {
            if layer.step(&[drive])[0] {
                spikes += 1;
            }
        }
        let rate = spikes as f32 / t as f32;
        let theory = (drive / theta).min(1.0);
        prop_assert!(
            (rate - theory).abs() < 0.02 + 2.0 / t as f32,
            "drive {drive} theta {theta}: rate {rate} vs theory {theory}"
        );
    }

    /// With sub-threshold drive (every input ≤ θ) the soft-reset membrane
    /// never exceeds θ. (Under super-threshold drive it legitimately grows:
    /// the output rate clamps at one spike per step.)
    #[test]
    fn membrane_bounded_under_subthreshold_drive(
        raw in proptest::collection::vec(0.0f32..1.0, 1..200),
        theta in 0.1f32..1.0,
    ) {
        let mut layer = IfNeuronLayer::new(1, theta, 1.0);
        for &r in &raw {
            let x = r * theta; // scale inputs below the threshold
            let _ = layer.step(&[x]);
            prop_assert!(layer.membranes()[0] <= theta + 1e-5);
        }
    }

    /// Total charge conservation (no leak): integrated input equals
    /// residual membrane plus threshold × spikes.
    #[test]
    fn charge_conserved_without_leak(
        inputs in proptest::collection::vec(0.0f32..0.7, 1..100),
        theta in 0.2f32..1.5,
    ) {
        let mut layer = IfNeuronLayer::new(1, theta, 1.0);
        let mut spikes = 0usize;
        for &x in &inputs {
            if layer.step(&[x])[0] {
                spikes += 1;
            }
        }
        let total_in: f32 = inputs.iter().sum();
        let accounted = layer.membranes()[0] + spikes as f32 * theta;
        prop_assert!(
            (total_in - accounted).abs() < 1e-3 * total_in.max(1.0),
            "in {total_in} vs membrane+spikes {accounted}"
        );
    }

    /// Bernoulli frames only ever spike where intensity is positive.
    #[test]
    fn bernoulli_respects_zeros(seed in 0u64..500) {
        let img = Tensor3::from_flat(vec![0.0, 0.8, 0.0, 0.4]);
        let mut train = SpikeTrain::new(&img, InputEncoding::Bernoulli);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let f = train.next_frame(&mut rng);
            prop_assert!(!f.as_slice()[0]);
            prop_assert!(!f.as_slice()[2]);
        }
    }
}
