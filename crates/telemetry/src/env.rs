//! Strict `SEI_*` environment-variable parsing.
//!
//! Malformed values are rejected with an error naming the variable, the
//! offending value, and the expected form — never silently replaced by a
//! default. A lookup-injectable variant keeps tests free of racy
//! `std::env::set_var` calls.

use std::fmt;
use std::str::FromStr;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    pub var: String,
    pub value: String,
    pub expected: &'static str,
}

impl EnvError {
    pub fn new(var: &str, value: &str, expected: &'static str) -> EnvError {
        EnvError {
            var: var.to_string(),
            value: value.to_string(),
            expected,
        }
    }
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "environment variable {}: invalid value {:?} (expected {})",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// Parse `name` from the process environment. Unset → `Ok(None)`;
/// set-but-malformed → `Err` with a clear message.
pub fn parse_var<T: FromStr>(name: &str, expected: &'static str) -> Result<Option<T>, EnvError> {
    parse_lookup(|n| std::env::var(n).ok(), name, expected)
}

/// Like [`parse_var`] but falls back to `default` only when the variable
/// is *unset* (malformed values still error).
pub fn parse_var_or<T: FromStr>(
    name: &str,
    expected: &'static str,
    default: T,
) -> Result<T, EnvError> {
    Ok(parse_var(name, expected)?.unwrap_or(default))
}

/// Lookup-injectable core of [`parse_var`], for deterministic tests.
pub fn parse_lookup<T: FromStr>(
    get: impl Fn(&str) -> Option<String>,
    name: &str,
    expected: &'static str,
) -> Result<Option<T>, EnvError> {
    match get(name) {
        None => Ok(None),
        Some(raw) => raw
            .trim()
            .parse::<T>()
            .map(Some)
            .map_err(|_| EnvError::new(name, &raw, expected)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn unset_is_none() {
        let got: Option<usize> = parse_lookup(env_of(&[]), "SEI_X", "a usize").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn valid_parses() {
        let got: Option<usize> =
            parse_lookup(env_of(&[("SEI_X", " 42 ")]), "SEI_X", "a usize").unwrap();
        assert_eq!(got, Some(42));
    }

    #[test]
    fn malformed_is_clear_error() {
        let err =
            parse_lookup::<usize>(env_of(&[("SEI_X", "lots")]), "SEI_X", "a usize").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("SEI_X"), "{msg}");
        assert!(msg.contains("lots"), "{msg}");
        assert!(msg.contains("a usize"), "{msg}");
    }
}
