//! Attribution scopes: per-layer / per-tile buckets for physical-event
//! counters.
//!
//! The global [`counters`](crate::counters) registry answers "how much
//! energy did this run spend" but not "which layer spent it". Attribution
//! scopes add that second axis: a scope is an interned label (e.g.
//! `"l02.conv/t01"` — layer 2, tile 1) and each scope owns a private
//! vector of the same events the global registry tracks. Hot paths do
//! *not* touch this registry per event — they accumulate locally (see
//! `ReadScratch` in `sei-crossbar`) and flush one batch per scope per
//! image, so the cost is one mutex acquisition per image, off the inner
//! loops.
//!
//! The breakdown is reported sorted by label, so the NDJSON section is
//! deterministic regardless of scope-creation or flush order.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::counters::{Event, Snapshot, EVENT_COUNT};
use crate::json::Value;

/// A dense handle to an interned attribution scope. Copy it into hot
/// structs; the label lives in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScopeId(u32);

impl ScopeId {
    /// The registry index of this scope.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct AttrRegistry {
    labels: Vec<String>,
    index: BTreeMap<String, u32>,
    buckets: Vec<[u64; EVENT_COUNT]>,
}

static REGISTRY: Mutex<AttrRegistry> = Mutex::new(AttrRegistry {
    labels: Vec::new(),
    index: BTreeMap::new(),
    buckets: Vec::new(),
});

/// Intern `label`, returning a stable [`ScopeId`]. Repeated calls with
/// the same label return the same id.
pub fn scope(label: &str) -> ScopeId {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(&id) = reg.index.get(label) {
        return ScopeId(id);
    }
    let id = reg.labels.len() as u32;
    reg.labels.push(label.to_string());
    reg.index.insert(label.to_string(), id);
    reg.buckets.push([0; EVENT_COUNT]);
    ScopeId(id)
}

/// Add a batch of event counts to one scope. One lock acquisition per
/// call — call sites batch per image, not per event. No-op when the
/// global counter registry is disabled, mirroring `counters::add`.
pub fn add_many(scope: ScopeId, entries: &[(Event, u64)]) {
    if !crate::counters::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap();
    let bucket = &mut reg.buckets[scope.index()];
    for &(event, n) in entries {
        bucket[event as usize] += n;
    }
}

/// All scopes with their accumulated counters, sorted by label. The sort
/// makes the breakdown independent of interning and flush order.
pub fn breakdown() -> Vec<(String, Snapshot)> {
    let reg = REGISTRY.lock().unwrap();
    let mut out: Vec<(String, Snapshot)> = reg
        .labels
        .iter()
        .zip(&reg.buckets)
        .map(|(label, bucket)| (label.clone(), Snapshot { values: *bucket }))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Render a breakdown as a JSON object keyed by scope label. Only
/// non-zero counters are emitted per scope (plus derived `energy_pj`
/// when energy was recorded), keeping report lines compact while staying
/// deterministic: which keys appear depends only on the counts.
pub fn breakdown_to_value(rows: &[(String, Snapshot)]) -> Value {
    let mut obj = Value::obj();
    for (label, snap) in rows {
        let mut entry = Value::obj();
        for event in crate::counters::ALL_EVENTS {
            let v = snap.get(event);
            if v > 0 {
                entry.set(event.name(), Value::UInt(v));
            }
        }
        if snap.get(Event::EnergyFemtojoules) > 0 {
            entry.set("energy_pj", Value::Float(snap.energy_pj()));
        }
        obj.set(label, entry);
    }
    obj
}

/// Drop every scope and its counts (between experiments / in tests).
/// Outstanding [`ScopeId`]s become invalid.
pub fn reset() {
    let mut reg = REGISTRY.lock().unwrap();
    reg.labels.clear();
    reg.index.clear();
    reg.buckets.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scope tests share the process-global registry; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn interning_is_stable_and_breakdown_sorted() {
        let _guard = LOCK.lock().unwrap();
        reset();
        crate::counters::set_enabled(true);
        let b = scope("l01.fc/t00");
        let a = scope("l00.conv/t00");
        assert_eq!(scope("l01.fc/t00"), b);
        add_many(a, &[(Event::CrossbarReadOps, 5), (Event::GateSwitches, 40)]);
        add_many(b, &[(Event::CrossbarReadOps, 2)]);
        add_many(a, &[(Event::CrossbarReadOps, 1)]);
        let rows = breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "l00.conv/t00");
        assert_eq!(rows[0].1.get(Event::CrossbarReadOps), 6);
        assert_eq!(rows[0].1.get(Event::GateSwitches), 40);
        assert_eq!(rows[1].0, "l01.fc/t00");
        assert_eq!(rows[1].1.get(Event::CrossbarReadOps), 2);
        reset();
    }

    #[test]
    fn breakdown_value_elides_zero_counters() {
        let _guard = LOCK.lock().unwrap();
        reset();
        crate::counters::set_enabled(true);
        let s = scope("l00.conv/t00");
        add_many(
            s,
            &[
                (Event::CrossbarReadOps, 3),
                (Event::EnergyFemtojoules, 1500),
            ],
        );
        let v = breakdown_to_value(&breakdown());
        let entry = v.get("l00.conv/t00").unwrap();
        assert_eq!(
            entry.get("crossbar_read_ops").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(entry.get("energy_fj").and_then(Value::as_u64), Some(1500));
        assert_eq!(entry.get("energy_pj").and_then(Value::as_f64), Some(1.5));
        assert!(entry.get("gate_switches").is_none());
        reset();
    }
}
