//! Hierarchical wall-clock phase timers.
//!
//! `let _guard = span!("training");` times the enclosing scope. Nested
//! spans record under a slash-joined path (`"table5/training"`), built
//! from a thread-local stack so span *entry* never takes a lock; only the
//! drop (span exit) touches the shared registry, and spans wrap pipeline
//! phases, not inner loops.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    pub calls: u64,
    pub total_ns: u128,
}

impl PhaseStat {
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

static REGISTRY: Mutex<BTreeMap<String, PhaseStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer for one pipeline phase. Create via the [`span!`](crate::span!) macro.
pub struct SpanGuard {
    path: String,
    start: Instant,
    /// Trace-clock start, captured only when trace capture is armed so
    /// the disabled-mode cost stays one relaxed load.
    trace_start: Option<u64>,
}

impl SpanGuard {
    pub fn enter(name: &'static str) -> SpanGuard {
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.join("/")
        });
        let trace_start = crate::trace::enabled().then(crate::trace::now_ns);
        SpanGuard {
            path,
            start: Instant::now(),
            trace_start,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if let Some(ts) = self.trace_start {
            crate::trace::record(self.path.clone(), "phase", ts);
        }
        let mut reg = REGISTRY.lock().unwrap();
        let stat = reg.entry(std::mem::take(&mut self.path)).or_default();
        stat.calls += 1;
        stat.total_ns += elapsed;
    }
}

/// Times the enclosing scope under the given phase name:
/// `let _span = sei_telemetry::span!("quantization");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// All recorded phases, sorted by path.
pub fn phase_timings() -> Vec<(String, PhaseStat)> {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Stat for a single phase path, if recorded.
pub fn phase(path: &str) -> Option<PhaseStat> {
    REGISTRY.lock().unwrap().get(path).copied()
}

/// Clear all recorded phase timings (between experiments / in tests).
pub fn reset() {
    REGISTRY.lock().unwrap().clear();
}
