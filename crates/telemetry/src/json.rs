//! Minimal JSON value, writer, and parser.
//!
//! The workspace cannot take a `serde_json` dependency, and run reports
//! only need compact, schema-stable output plus enough parsing to round
//! trip in tests and diff tooling. Objects preserve insertion order so
//! the emitted schema is byte-stable across runs.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers, emitted without a decimal point.
    Int(i64),
    /// Unsigned integers (counters), emitted without a decimal point.
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Insert (or replace) a key in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: Value) -> &mut Value {
        match self {
            Value::Obj(entries) => {
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("Value::set on non-object"),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact single-line JSON, suitable as one NDJSON record.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep floats round-trippable and visually distinct
                    // from integers.
                    if *f == f.trunc() && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (e.g. one NDJSON line).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for report keys;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
