//! `sei-telemetry` — the observability layer of the SEI simulator.
//!
//! The paper's headline claims are aggregate physical counts (energy per
//! read, ADC conversions saved, SEI gate switches driven by 1-bit
//! activations), so the simulator needs a measurement layer that is cheap
//! enough to live on the hot paths it measures. This crate provides
//! several pieces, all dependency-free:
//!
//! * [`counters`] — a fixed registry of typed physical-event counters
//!   (crossbar reads, transmission-gate switches, ADC/DAC conversions,
//!   sense-amp fires, write pulses, accumulated energy). Counting is a
//!   relaxed atomic add; when metrics are disabled the cost is one relaxed
//!   atomic load plus a branch per event.
//! * [`span`] — hierarchical wall-clock phase timers via the [`span!`]
//!   macro. Guards push onto a thread-local stack, so nesting is tracked
//!   without a global lock on entry; only span *exit* touches the shared
//!   registry.
//! * [`log`] — a leveled logging facade (`SEI_LOG=error|warn|info|debug`)
//!   with the [`sei_error!`], [`sei_warn!`], [`sei_info!`], [`sei_debug!`]
//!   macros and a [`log::Heartbeat`] helper for long-running search loops.
//! * [`report`] — an NDJSON run-report emitter (`SEI_REPORT_JSON=path`)
//!   backed by the hand-rolled [`json`] module, capturing scale, seeds,
//!   per-layer error decomposition, phase timings, physical counters, and
//!   the attribution breakdown as one machine-readable line per
//!   experiment.
//! * [`trace`] — hierarchical trace capture (`SEI_TRACE=path.json`)
//!   exported as Chrome trace-event JSON, with a deterministic
//!   virtual-time mode (`SEI_TRACE_CLOCK=virtual`).
//! * [`hist`] — fixed-bucket log-scale histograms whose merge is
//!   order-invariant, so chunk-parallel percentile collection stays
//!   bit-identical.
//! * [`attr`] — attribution scopes bucketing the physical-event counters
//!   per network layer and per tile.
//!
//! [`env`] rounds things out with strict `SEI_*` environment parsing that
//! rejects malformed values with a clear error instead of silently falling
//! back to defaults.

pub mod attr;
pub mod counters;
pub mod env;
pub mod hist;
pub mod json;
pub mod log;
pub mod report;
pub mod span;
pub mod trace;

pub use attr::ScopeId;
pub use counters::Event;
pub use env::EnvError;
pub use hist::Histogram;
pub use log::{Heartbeat, Level};
pub use report::RunReport;

/// Validates telemetry-related environment up front: `SEI_LOG` must be a
/// known level, `SEI_REPORT_JSON` and `SEI_TRACE`, when set, must be
/// non-empty, and `SEI_TRACE_CLOCK` must name a known clock. A valid
/// `SEI_TRACE` also arms trace capture.
///
/// Binaries should call this first so a typo like `SEI_LOG=verbose` fails
/// loudly at startup instead of deep inside a run. Library code that never
/// sees `init_from_env` still works: the log level is parsed lazily on
/// first use (and panics with the same message on malformed input).
pub fn init_from_env() -> Result<(), EnvError> {
    log::init_level_from_env()?;
    report::report_path_from_env()?;
    trace::init_from_env()?;
    Ok(())
}
