//! NDJSON run reports.
//!
//! Each experiment appends exactly one JSON line to the file named by
//! `SEI_REPORT_JSON`, capturing experiment identity, scale/seed, caller
//! sections (e.g. per-layer error decomposition), phase timings from the
//! span registry, and the physical-event counters. One line per run makes
//! reports trivially diffable and greppable:
//!
//! ```text
//! SEI_REPORT_JSON=a.ndjson cargo run --release -p sei-bench --bin table5
//! ```

use std::io::Write;

use crate::attr;
use crate::counters::{self, Snapshot, ALL_EVENTS};
use crate::env::{parse_var, EnvError};
use crate::json::Value;
use crate::span::{self, PhaseStat};

pub const SCHEMA: &str = "sei-run-report/v1";

/// Builder for one NDJSON run-report line. Key order is fixed by
/// insertion order, so the emitted schema is stable across runs.
#[derive(Debug, Clone)]
pub struct RunReport {
    root: Value,
}

impl RunReport {
    pub fn new(experiment: &str) -> RunReport {
        let mut root = Value::obj();
        root.set("schema", Value::Str(SCHEMA.to_string()));
        root.set("experiment", Value::Str(experiment.to_string()));
        RunReport { root }
    }

    /// Attach an arbitrary top-level section or scalar.
    pub fn set(&mut self, key: &str, value: Value) -> &mut RunReport {
        self.root.set(key, value);
        self
    }

    pub fn set_u64(&mut self, key: &str, v: u64) -> &mut RunReport {
        self.set(key, Value::UInt(v))
    }

    pub fn set_f64(&mut self, key: &str, v: f64) -> &mut RunReport {
        self.set(key, Value::Float(v))
    }

    pub fn set_str(&mut self, key: &str, v: &str) -> &mut RunReport {
        self.set(key, Value::Str(v.to_string()))
    }

    /// Attach the live span registry, counter registry, and — when any
    /// attribution scopes were recorded — the per-scope breakdown table.
    pub fn finalize(&mut self) -> &mut RunReport {
        let phases = span::phase_timings();
        let counters = counters::snapshot();
        self.finalize_with(&phases, &counters);
        let rows = attr::breakdown();
        if !rows.is_empty() {
            self.root
                .set("attribution", attr::breakdown_to_value(&rows));
        }
        self
    }

    /// Deterministic variant of [`finalize`](Self::finalize) for tests.
    pub fn finalize_with(
        &mut self,
        phases: &[(String, PhaseStat)],
        counters: &Snapshot,
    ) -> &mut RunReport {
        let mut phase_obj = Value::obj();
        for (path, stat) in phases {
            let mut entry = Value::obj();
            entry.set("calls", Value::UInt(stat.calls));
            entry.set("total_ms", Value::Float(stat.total_ms()));
            phase_obj.set(path, entry);
        }
        self.root.set("phases", phase_obj);

        let mut counter_obj = Value::obj();
        for event in ALL_EVENTS {
            counter_obj.set(event.name(), Value::UInt(counters.get(event)));
        }
        counter_obj.set("energy_pj", Value::Float(counters.energy_pj()));
        counter_obj.set("write_energy_j", Value::Float(counters.write_energy_j()));
        self.root.set("counters", counter_obj);
        self
    }

    /// The report as one compact JSON line (no trailing newline).
    pub fn to_ndjson_line(&self) -> String {
        self.root.to_json()
    }

    pub fn as_value(&self) -> &Value {
        &self.root
    }

    /// Append this report to `path` as one NDJSON line.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(file, "{}", self.to_ndjson_line())
    }

    /// Append to the file named by `SEI_REPORT_JSON`, if set. Returns
    /// `Ok(true)` when a line was written. Malformed (empty) paths error.
    pub fn emit_env(&self) -> Result<bool, Box<dyn std::error::Error>> {
        match report_path_from_env()? {
            None => Ok(false),
            Some(path) => {
                self.write_to(&path)?;
                Ok(true)
            }
        }
    }
}

/// Read and validate `SEI_REPORT_JSON`. Unset → `None`; set but empty →
/// error (the caller almost certainly made a shell quoting mistake).
pub fn report_path_from_env() -> Result<Option<String>, EnvError> {
    match parse_var::<String>("SEI_REPORT_JSON", "a writable file path")? {
        Some(p) if p.trim().is_empty() => Err(EnvError::new(
            "SEI_REPORT_JSON",
            &p,
            "a non-empty file path",
        )),
        other => Ok(other),
    }
}
