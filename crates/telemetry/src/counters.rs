//! Typed counters for physical events in the simulated accelerator.
//!
//! The registry is a fixed array of relaxed `AtomicU64`s indexed by
//! [`Event`], guarded by a single `AtomicBool`. Hot paths batch their adds
//! (one `add` per forward pass, not per cell), so the enabled-mode cost is
//! a couple of relaxed atomic RMWs per crossbar operation and the
//! disabled-mode cost is one relaxed load plus a branch per event.
//!
//! Energy is accumulated as integer femtojoules so that concurrent adds
//! stay exact and lock-free; reports convert to picojoules.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Physical events tracked across the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Event {
    /// One analog read operation of a crossbar (or crossbar copy): a full
    /// wordline-drive + column-current evaluation.
    CrossbarReadOps,
    /// SEI transmission gates driven on by a 1-bit input during a read
    /// (the quantity the SEI structure exists to minimize).
    GateSwitches,
    /// Sense-amplifier threshold decisions (the SEI replacement for ADCs).
    SenseAmpFires,
    /// Full ADC output reconstructions in the merged/conventional path.
    AdcConversions,
    /// DAC input conversions (analog wordline voltages from digital input).
    DacConversions,
    /// Write-verify programming pulses applied to RRAM cells.
    WritePulses,
    /// Accumulated read/write energy, in femtojoules (reported as pJ).
    EnergyFemtojoules,
    /// Gaussian read-noise samples drawn on sensed column currents (the
    /// stochastic work item 2 of the roadmap wants attributed).
    NoiseDraws,
    /// Cells pinned to `g_min`/`g_max` by a stuck-at or wear-out fault
    /// instead of being programmed.
    FaultedCellsPinned,
    /// Kernel columns remapped onto redundant spare columns to dodge
    /// fault clusters.
    SpareColumnRemaps,
    /// Inference requests admitted into the serving queue.
    RequestsAdmitted,
    /// Inference requests shed (queue full or deadline unmeetable).
    RequestsShed,
    /// Batches dispatched onto the layer pipeline by the serving layer.
    BatchesFormed,
    /// Peak admission-queue depth observed (a high-water mark recorded
    /// via [`record_max`], not an accumulating count).
    QueueDepthPeak,
    /// Queued requests of a lower-priority tenant evicted by the fleet
    /// scheduler to make room for a higher-priority arrival.
    RequestsEvicted,
    /// Fleet autoscaler replication increases (tiles acquired).
    FleetScaleUps,
    /// Fleet autoscaler replication decreases (tiles released).
    FleetScaleDowns,
    /// Row write–verify passes applied to *live* tiles by the lifecycle
    /// reprogramming scheduler (distinct from [`Event::WritePulses`],
    /// which counts per-cell pulses during offline array programming).
    Writes,
    /// Accumulated lifecycle write energy, in femtojoules (reported also
    /// as joules under `write_energy_j`). Kept separate from
    /// [`Event::EnergyFemtojoules`] so update energy is attributable
    /// against read/serving energy.
    WriteEnergyFemtojoules,
    /// Kernel columns whose sense decision the activation estimator
    /// proved `false` before the read, so the column was never sensed
    /// (`SEI_ESTIMATOR`, DESIGN.md §14).
    ColumnsSkipped,
    /// Cell reads elided by skipped columns (active rows × skipped
    /// columns — the sub-matrix the estimator gated off).
    ReadsSkipped,
    /// Read energy *not* spent thanks to skipped columns, in femtojoules.
    /// [`Event::EnergyFemtojoules`] already excludes it; this counter
    /// makes the saving itself reportable.
    EnergySavedFemtojoules,
}

pub const EVENT_COUNT: usize = 22;

pub const ALL_EVENTS: [Event; EVENT_COUNT] = [
    Event::CrossbarReadOps,
    Event::GateSwitches,
    Event::SenseAmpFires,
    Event::AdcConversions,
    Event::DacConversions,
    Event::WritePulses,
    Event::EnergyFemtojoules,
    Event::NoiseDraws,
    Event::FaultedCellsPinned,
    Event::SpareColumnRemaps,
    Event::RequestsAdmitted,
    Event::RequestsShed,
    Event::BatchesFormed,
    Event::QueueDepthPeak,
    Event::RequestsEvicted,
    Event::FleetScaleUps,
    Event::FleetScaleDowns,
    Event::Writes,
    Event::WriteEnergyFemtojoules,
    Event::ColumnsSkipped,
    Event::ReadsSkipped,
    Event::EnergySavedFemtojoules,
];

impl Event {
    /// Stable snake_case name used as the NDJSON report key.
    pub fn name(self) -> &'static str {
        match self {
            Event::CrossbarReadOps => "crossbar_read_ops",
            Event::GateSwitches => "gate_switches",
            Event::SenseAmpFires => "sense_amp_fires",
            Event::AdcConversions => "adc_conversions",
            Event::DacConversions => "dac_conversions",
            Event::WritePulses => "write_pulses",
            Event::EnergyFemtojoules => "energy_fj",
            Event::NoiseDraws => "noise_draws",
            Event::FaultedCellsPinned => "faulted_cells_pinned",
            Event::SpareColumnRemaps => "spare_column_remaps",
            Event::RequestsAdmitted => "requests_admitted",
            Event::RequestsShed => "requests_shed",
            Event::BatchesFormed => "batches_formed",
            Event::QueueDepthPeak => "queue_depth_peak",
            Event::RequestsEvicted => "requests_evicted",
            Event::FleetScaleUps => "fleet_scale_ups",
            Event::FleetScaleDowns => "fleet_scale_downs",
            Event::Writes => "writes",
            Event::WriteEnergyFemtojoules => "write_energy_fj",
            Event::ColumnsSkipped => "columns_skipped",
            Event::ReadsSkipped => "reads_skipped",
            Event::EnergySavedFemtojoules => "energy_saved_fj",
        }
    }
}

static COUNTERS: [AtomicU64; EVENT_COUNT] = [const { AtomicU64::new(0) }; EVENT_COUNT];
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether physical-event counting is active. One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable counting (spans and logging are unaffected).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Add `n` occurrences of `event`. Call sites should batch per operation
/// (e.g. once per forward pass) rather than per cell.
#[inline(always)]
pub fn add(event: Event, n: u64) {
    if enabled() {
        COUNTERS[event as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Accumulate energy given in joules (converted to integer femtojoules so
/// concurrent adds are exact).
#[inline(always)]
pub fn add_energy_joules(joules: f64) {
    if enabled() {
        let fj = (joules * 1e15).round();
        if fj > 0.0 {
            COUNTERS[Event::EnergyFemtojoules as usize].fetch_add(fj as u64, Ordering::Relaxed);
        }
    }
}

/// Accumulate lifecycle *write* energy given in joules (integer
/// femtojoules internally, like [`add_energy_joules`]). Call sites batch
/// per update, never per pulse.
#[inline(always)]
pub fn add_write_energy_joules(joules: f64) {
    if enabled() {
        let fj = (joules * 1e15).round();
        if fj > 0.0 {
            COUNTERS[Event::WriteEnergyFemtojoules as usize]
                .fetch_add(fj as u64, Ordering::Relaxed);
        }
    }
}

/// Raise `event` to at least `v` (a high-water mark, e.g. peak queue
/// depth). Uses an atomic `fetch_max`, so concurrent recordings keep the
/// true maximum regardless of ordering.
#[inline(always)]
pub fn record_max(event: Event, v: u64) {
    if enabled() {
        COUNTERS[event as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// Current value of one counter.
pub fn get(event: Event) -> u64 {
    COUNTERS[event as usize].load(Ordering::Relaxed)
}

/// Reset every counter to zero (between experiments / in tests).
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub values: [u64; EVENT_COUNT],
}

impl Snapshot {
    pub fn get(&self, event: Event) -> u64 {
        self.values[event as usize]
    }

    /// Accumulated energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.get(Event::EnergyFemtojoules) as f64 / 1e3
    }

    /// Accumulated lifecycle write energy in joules.
    pub fn write_energy_j(&self) -> f64 {
        self.get(Event::WriteEnergyFemtojoules) as f64 / 1e15
    }

    /// Read energy the activation estimator avoided spending, in joules.
    pub fn energy_saved_j(&self) -> f64 {
        self.get(Event::EnergySavedFemtojoules) as f64 / 1e15
    }

    /// Counter-wise difference `self - earlier` (saturating), for
    /// measuring one phase of a longer run.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for i in 0..EVENT_COUNT {
            out.values[i] = self.values[i].saturating_sub(earlier.values[i]);
        }
        out
    }
}

/// Snapshot the live registry.
pub fn snapshot() -> Snapshot {
    let mut s = Snapshot::default();
    for (i, c) in COUNTERS.iter().enumerate() {
        s.values[i] = c.load(Ordering::Relaxed);
    }
    s
}
