//! Leveled logging facade for library crates.
//!
//! The level comes from `SEI_LOG` (`error|warn|info|debug`, default
//! `warn`) and is parsed once; a malformed value is rejected with a clear
//! message — eagerly via [`crate::init_from_env`] in binaries, or as a
//! panic on first lazy use in library-only contexts. Output goes to
//! stderr so bench binaries keep stdout for their tables.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

use crate::env::EnvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

impl std::str::FromStr for Level {
    type Err = ();
    fn from_str(s: &str) -> Result<Level, ()> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            _ => Err(()),
        }
    }
}

/// 0..=3 mirror `Level`; sentinel meaning "not initialized yet".
const UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// Parse `SEI_LOG` and fix the level. Returns a clear error (instead of a
/// silent default) when the value is malformed.
pub fn init_level_from_env() -> Result<Level, EnvError> {
    let level = crate::env::parse_var_or("SEI_LOG", "one of error|warn|info|debug", Level::Warn)?;
    set_level(level);
    Ok(level)
}

/// Override the level programmatically (tests, binaries with CLI flags).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current level, lazily initialized from `SEI_LOG`. Panics with the same
/// clear message `init_level_from_env` would return if the variable is
/// malformed — never silently defaults.
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != UNSET {
        return Level::from_u8(raw);
    }
    match init_level_from_env() {
        Ok(level) => level,
        Err(e) => panic!("{e}"),
    }
}

/// One relaxed load + compare on the fast path.
#[inline]
pub fn log_enabled(at: Level) -> bool {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == UNSET {
        return at <= level();
    }
    at as u8 <= raw
}

#[doc(hidden)]
pub fn write_line(at: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[sei {:5}] {args}", at.as_str());
}

#[macro_export]
macro_rules! sei_log {
    ($lvl:expr, $($arg:tt)+) => {
        if $crate::log::log_enabled($lvl) {
            $crate::log::write_line($lvl, format_args!($($arg)+));
        }
    };
}

#[macro_export]
macro_rules! sei_error {
    ($($arg:tt)+) => { $crate::sei_log!($crate::log::Level::Error, $($arg)+) };
}

#[macro_export]
macro_rules! sei_warn {
    ($($arg:tt)+) => { $crate::sei_log!($crate::log::Level::Warn, $($arg)+) };
}

#[macro_export]
macro_rules! sei_info {
    ($($arg:tt)+) => { $crate::sei_log!($crate::log::Level::Info, $($arg)+) };
}

#[macro_export]
macro_rules! sei_debug {
    ($($arg:tt)+) => { $crate::sei_log!($crate::log::Level::Debug, $($arg)+) };
}

/// Periodic progress reporter for long search loops (GA homogenization,
/// Algorithm 1 threshold scans). Emits an info-level line at most once per
/// interval, so scaled-up runs are not silent for minutes while the loop
/// itself pays one `Instant::now()` per tick.
pub struct Heartbeat {
    label: &'static str,
    every: Duration,
    start: Instant,
    last: Instant,
}

impl Heartbeat {
    /// Default 2-second reporting interval.
    pub fn new(label: &'static str) -> Heartbeat {
        Heartbeat::with_interval(label, Duration::from_secs(2))
    }

    pub fn with_interval(label: &'static str, every: Duration) -> Heartbeat {
        let now = Instant::now();
        Heartbeat {
            label,
            every,
            start: now,
            last: now,
        }
    }

    /// Report progress; logs when the interval has elapsed since the last
    /// report. `iteration`/`total` describe loop position (`total == 0`
    /// means unbounded), `objective` is the current best objective value.
    pub fn tick(&mut self, iteration: usize, total: usize, objective: f64) {
        if !log_enabled(Level::Info) || self.last.elapsed() < self.every {
            return;
        }
        self.last = Instant::now();
        let elapsed = self.start.elapsed().as_secs_f64();
        if total > 0 {
            crate::sei_info!(
                "{}: iter {iteration}/{total}, best {objective:.6}, elapsed {elapsed:.1}s",
                self.label
            );
        } else {
            crate::sei_info!(
                "{}: iter {iteration}, best {objective:.6}, elapsed {elapsed:.1}s",
                self.label
            );
        }
    }
}
