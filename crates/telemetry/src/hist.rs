//! Fixed-bucket log-scale histograms with deterministic merge.
//!
//! Latency and size distributions in the serving layer need true
//! percentiles, not means, and they must survive the engine's
//! chunk-parallel execution bit-identically: per-chunk histograms are
//! merged by elementwise `u64` addition, which is associative and
//! commutative, so any merge order yields the same buckets and the same
//! quantiles.
//!
//! The bucket layout is HDR-style base-2: values below 8 get exact unit
//! buckets; every octave above that is split into 8 sub-buckets (3
//! significant bits), bounding the relative quantization error at 12.5%
//! while covering the whole `u64` range in [`BUCKETS`] slots. Quantiles
//! are reported as the *lower bound* of the bucket containing the
//! nearest-rank sample, so they are integers and byte-stable in reports.

/// Significant bits kept per octave (8 sub-buckets per power of two).
const SUB_BITS: u32 = 3;

/// Total number of buckets needed to cover all of `u64`.
pub const BUCKETS: usize = 496;

/// Index of the bucket containing `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    (((exp - SUB_BITS + 1) << SUB_BITS) | sub as u32) as usize
}

/// Smallest value that lands in bucket `idx` (the reported quantile
/// value). Inverse of [`bucket_index`] on bucket boundaries:
/// `bucket_index(lower_bound(i)) == i` for every valid `i`.
#[inline]
pub fn lower_bound(idx: usize) -> u64 {
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let group = (idx >> SUB_BITS) as u32;
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    ((1 << SUB_BITS) + sub) << (group - 1)
}

/// A log-scale histogram over `u64` samples (latencies in ns, batch
/// sizes, queue depths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
    }

    /// Merge another histogram into this one. Elementwise addition, so
    /// merging any permutation of per-chunk histograms is bit-identical.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (exact).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile for `p` in `[0, 1]`: the lower bound of the
    /// bucket holding the sample of rank `ceil(p * count)`. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return lower_bound(idx);
            }
        }
        lower_bound(BUCKETS - 1)
    }

    /// Sparse view: `(bucket lower bound, count)` for every non-empty
    /// bucket, in ascending value order. Because a bucket's lower bound
    /// maps back into the same bucket, a histogram rebuilt with
    /// `record_n` over these pairs has identical buckets and quantiles.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (lower_bound(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_inverts_lower_bound() {
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(lower_bound(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut prev = 0;
        for &v in &[
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            1_000_000,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v {v} -> idx {idx}");
            assert!(idx >= prev, "v {v} not monotone");
            assert!(lower_bound(idx) <= v, "v {v} below its bucket");
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[9u64, 100, 12_345, 999_999_999, u64::MAX / 3] {
            let lo = lower_bound(bucket_index(v));
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 0.125, "v {v}: rel err {err}");
        }
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 100);
        // Rank 50 sample is 50_000; its bucket lower bound is <= 50_000.
        let p50 = h.quantile(0.50);
        assert!(p50 <= 50_000 && p50 > 40_000, "{p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 <= 99_000 && p99 > 90_000, "{p99}");
        assert!(h.quantile(1.0) >= p99);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        h.record_n(3, 10);
        h.record_n(5, 10);
        assert_eq!(h.quantile(0.25), 3);
        assert_eq!(h.quantile(0.75), 5);
        assert_eq!(h.mean(), 4.0);
    }

    /// Deterministic mirror of the merge-order proptest in
    /// `tests/hist.rs`: a fixed set of per-chunk histograms merged in
    /// several fixed orders must agree exactly.
    #[test]
    fn merge_is_order_invariant() {
        let chunks: Vec<Histogram> = (0..5)
            .map(|c| {
                let mut h = Histogram::new();
                for i in 0..200u64 {
                    // Spread across many octaves.
                    h.record((i + 1) * (c + 1) * 37 % 1_000_000 + 1);
                }
                h
            })
            .collect();
        let orders: [[usize; 5]; 3] = [[0, 1, 2, 3, 4], [4, 3, 2, 1, 0], [2, 0, 4, 1, 3]];
        let merged: Vec<Histogram> = orders
            .iter()
            .map(|order| {
                let mut acc = Histogram::new();
                for &i in order {
                    acc.merge(&chunks[i]);
                }
                acc
            })
            .collect();
        assert_eq!(merged[0], merged[1]);
        assert_eq!(merged[0], merged[2]);
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(merged[0].quantile(p), merged[1].quantile(p));
            assert_eq!(merged[0].quantile(p), merged[2].quantile(p));
        }
    }

    #[test]
    fn nonzero_buckets_round_trip() {
        let mut h = Histogram::new();
        for &v in &[0u64, 1, 7, 8, 100, 5_000, 123_456_789] {
            h.record_n(v, 3);
        }
        let mut rebuilt = Histogram::new();
        for (lo, n) in h.nonzero_buckets() {
            rebuilt.record_n(lo, n);
        }
        assert_eq!(rebuilt.counts, h.counts);
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(rebuilt.quantile(p), h.quantile(p));
        }
    }
}
