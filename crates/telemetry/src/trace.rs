//! Hierarchical trace capture with Chrome trace-event export.
//!
//! When `SEI_TRACE=path.json` is set, every span (and any explicit
//! [`scope`] on the kernel paths) records a *complete* event (`ph:"X"`)
//! with a start timestamp and duration; [`write_env`] serializes the
//! buffer as Chrome trace-event JSON loadable in `chrome://tracing` or
//! Perfetto. Parent/child structure comes for free: nested spans emit
//! nested time ranges on the same thread track, which the viewers render
//! hierarchically.
//!
//! Two clocks are available via `SEI_TRACE_CLOCK`:
//!
//! * `wall` (default) — monotonic nanoseconds since the first trace
//!   event, for real profiling.
//! * `virtual` — a deterministic global tick incremented on every clock
//!   read. Single-threaded runs produce byte-identical traces across
//!   invocations, which is what the trace smoke test pins down.
//!
//! Tracing is off by default; a disabled [`scope`] call is one relaxed
//! atomic load, and the name closure is never evaluated.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::env::{parse_lookup, parse_var, EnvError};
use crate::json::Value;

/// Which clock stamps trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Clock {
    /// Monotonic wall clock, zeroed at the first event.
    #[default]
    Wall,
    /// Deterministic tick: each read advances a global counter.
    Virtual,
}

impl std::str::FromStr for Clock {
    type Err = ();

    fn from_str(s: &str) -> Result<Clock, ()> {
        match s {
            "wall" => Ok(Clock::Wall),
            "virtual" => Ok(Clock::Virtual),
            _ => Err(()),
        }
    }
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    tid: u32,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static VIRTUAL_CLOCK: AtomicBool = AtomicBool::new(false);
static VIRTUAL_NOW: AtomicU64 = AtomicU64::new(0);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

fn tid() -> u32 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Whether trace capture is active. One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn trace capture on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Select the trace clock.
pub fn set_clock(clock: Clock) {
    VIRTUAL_CLOCK.store(clock == Clock::Virtual, Ordering::Relaxed);
}

/// Current trace timestamp in nanoseconds. In virtual mode every read
/// advances the global tick, so timestamps are deterministic on a single
/// thread.
pub fn now_ns() -> u64 {
    if VIRTUAL_CLOCK.load(Ordering::Relaxed) {
        VIRTUAL_NOW.fetch_add(1, Ordering::Relaxed)
    } else {
        let epoch = *EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos() as u64
    }
}

/// Record a complete event that started at `start_ns` and ends now.
pub fn record(name: String, cat: &'static str, start_ns: u64) {
    let dur_ns = now_ns().saturating_sub(start_ns);
    let event = TraceEvent {
        name,
        cat,
        ts_ns: start_ns,
        dur_ns,
        tid: tid(),
    };
    EVENTS.lock().unwrap().push(event);
}

/// RAII guard for an explicitly traced region (kernel paths, request
/// classes). Dropping it records the event.
pub struct TraceGuard {
    name: String,
    cat: &'static str,
    start_ns: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        record(std::mem::take(&mut self.name), self.cat, self.start_ns);
    }
}

/// Open a traced region under category `cat`. Returns `None` — without
/// evaluating the name closure — when tracing is disabled, so hot paths
/// pay one relaxed load and a branch.
#[inline]
pub fn scope(cat: &'static str, name: impl FnOnce() -> String) -> Option<TraceGuard> {
    if !enabled() {
        return None;
    }
    Some(TraceGuard {
        name: name(),
        cat,
        start_ns: now_ns(),
    })
}

/// Number of buffered events (for smoke checks).
pub fn event_count() -> usize {
    EVENTS.lock().unwrap().len()
}

/// Drop all buffered events and rewind the virtual clock.
pub fn reset() {
    EVENTS.lock().unwrap().clear();
    VIRTUAL_NOW.store(0, Ordering::Relaxed);
}

/// The buffered events as a Chrome trace-event JSON document:
/// `{"traceEvents":[{name, cat, ph:"X", ts, dur, pid, tid}, ...]}` with
/// timestamps in microseconds, as the trace viewers expect.
pub fn to_value() -> Value {
    let events = EVENTS.lock().unwrap();
    let arr: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut obj = Value::obj();
            obj.set("name", Value::Str(e.name.clone()));
            obj.set("cat", Value::Str(e.cat.to_string()));
            obj.set("ph", Value::Str("X".to_string()));
            obj.set("ts", Value::Float(e.ts_ns as f64 / 1e3));
            obj.set("dur", Value::Float(e.dur_ns as f64 / 1e3));
            obj.set("pid", Value::UInt(1));
            obj.set("tid", Value::UInt(e.tid as u64));
            obj
        })
        .collect();
    let mut root = Value::obj();
    root.set("traceEvents", Value::Arr(arr));
    root
}

/// Write the buffered events to `path` as Chrome trace-event JSON.
pub fn write_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_value().to_json())
}

/// Write the trace to the file named by `SEI_TRACE`, if set. Returns
/// `Ok(true)` when a file was written.
pub fn write_env() -> Result<bool, Box<dyn std::error::Error>> {
    match trace_path_from_env()? {
        None => Ok(false),
        Some(path) => {
            write_to(&path)?;
            Ok(true)
        }
    }
}

/// Read and validate `SEI_TRACE`. Unset → `None`; set but empty → error
/// (almost certainly a shell quoting mistake).
pub fn trace_path_from_env() -> Result<Option<String>, EnvError> {
    trace_path_from_lookup(|n| std::env::var(n).ok())
}

/// Lookup-injectable core of [`trace_path_from_env`], for tests.
pub fn trace_path_from_lookup(
    get: impl Fn(&str) -> Option<String>,
) -> Result<Option<String>, EnvError> {
    match parse_lookup::<String>(get, "SEI_TRACE", "a writable file path")? {
        Some(p) if p.trim().is_empty() => {
            Err(EnvError::new("SEI_TRACE", &p, "a non-empty file path"))
        }
        other => Ok(other),
    }
}

/// Read and validate `SEI_TRACE_CLOCK` (`wall` | `virtual`, default
/// `wall`).
pub fn trace_clock_from_env() -> Result<Clock, EnvError> {
    Ok(parse_var::<Clock>("SEI_TRACE_CLOCK", "\"wall\" or \"virtual\"")?.unwrap_or_default())
}

/// Lookup-injectable core of [`trace_clock_from_env`], for tests.
pub fn trace_clock_from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<Clock, EnvError> {
    Ok(
        parse_lookup::<Clock>(get, "SEI_TRACE_CLOCK", "\"wall\" or \"virtual\"")?
            .unwrap_or_default(),
    )
}

/// Validate the trace environment and arm capture when `SEI_TRACE` is
/// set. Called from [`crate::init_from_env`].
pub fn init_from_env() -> Result<(), EnvError> {
    let path = trace_path_from_env()?;
    set_clock(trace_clock_from_env()?);
    if path.is_some() {
        set_enabled(true);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_path_rejects_empty() {
        let err = trace_path_from_lookup(|_| Some("  ".to_string())).unwrap_err();
        assert!(err.to_string().contains("SEI_TRACE"), "{err}");
        assert_eq!(trace_path_from_lookup(|_| None).unwrap(), None);
        assert_eq!(
            trace_path_from_lookup(|_| Some("t.json".to_string())).unwrap(),
            Some("t.json".to_string())
        );
    }

    #[test]
    fn trace_clock_parses_strictly() {
        assert_eq!(trace_clock_from_lookup(|_| None).unwrap(), Clock::Wall);
        assert_eq!(
            trace_clock_from_lookup(|_| Some("virtual".to_string())).unwrap(),
            Clock::Virtual
        );
        assert_eq!(
            trace_clock_from_lookup(|_| Some(" wall ".to_string())).unwrap(),
            Clock::Wall
        );
        let err = trace_clock_from_lookup(|_| Some("cpu".to_string())).unwrap_err();
        assert!(err.to_string().contains("SEI_TRACE_CLOCK"), "{err}");
        assert!(err.to_string().contains("cpu"), "{err}");
    }
}
