//! Property tests for histogram determinism: merging per-chunk
//! histograms in any order must yield identical buckets and identical
//! p50/p95/p99 — the contract the chunk-parallel serve sweep relies on
//! for byte-identical reports at any `SEI_THREADS`.

use proptest::prelude::*;
use sei_telemetry::hist::{bucket_index, lower_bound, Histogram, BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partition of any sample set, merged in any order, agrees
    /// exactly with the sequentially built histogram.
    #[test]
    fn merge_order_is_irrelevant(
        samples in prop::collection::vec(0u64..u64::MAX, 1..400),
        chunk_count in 1usize..8,
        order in prop::collection::vec(0usize..usize::MAX, 8),
    ) {
        // Sequential reference.
        let mut reference = Histogram::new();
        for &s in &samples {
            reference.record(s);
        }

        // Partition round-robin into chunks.
        let mut chunks = vec![Histogram::new(); chunk_count];
        for (i, &s) in samples.iter().enumerate() {
            chunks[i % chunk_count].record(s);
        }

        // Merge in a permutation derived from the random order keys.
        let mut indices: Vec<usize> = (0..chunk_count).collect();
        indices.sort_by_key(|&i| order[i % order.len()].wrapping_mul(i + 1));
        let mut merged = Histogram::new();
        for &i in &indices {
            merged.merge(&chunks[i]);
        }

        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for p in [0.50, 0.95, 0.99] {
            prop_assert_eq!(merged.quantile(p), reference.quantile(p));
        }
    }

    /// Quantiles bound their nearest-rank sample from below within one
    /// bucket, and are monotone in p.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let mut h = Histogram::new();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0;
        for p in [0.50, 0.95, 0.99, 1.0] {
            let q = h.quantile(p);
            prop_assert!(q >= prev);
            prev = q;
            // The reported value is the lower bound of the bucket holding
            // the nearest-rank sample.
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            prop_assert_eq!(q, lower_bound(bucket_index(exact)));
        }
    }

    /// Every u64 maps into a valid bucket whose lower bound round-trips.
    #[test]
    fn bucket_layout_is_consistent(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS);
        prop_assert!(lower_bound(idx) <= v);
        prop_assert_eq!(bucket_index(lower_bound(idx)), idx);
    }
}
