//! Integration tests for the observability layer: counter aggregation
//! under concurrent increments, span nesting/timing monotonicity, and
//! NDJSON report round-trip with a schema-stability snapshot.

use sei_telemetry::counters::{self, Event, Snapshot};
use sei_telemetry::json::{self, Value};
use sei_telemetry::report::{RunReport, SCHEMA};
use sei_telemetry::span::{self, PhaseStat};
use std::sync::Mutex;
use std::time::Duration;

/// The two tests that toggle the global enabled flag must not interleave.
static ENABLE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_counter_increments_aggregate_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    let _guard = ENABLE_LOCK.lock().unwrap();
    counters::set_enabled(true);
    let before = counters::snapshot();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    counters::add(Event::GateSwitches, 3);
                    counters::add_energy_joules(2e-15);
                }
            });
        }
    });
    let delta = counters::snapshot().delta_since(&before);
    assert_eq!(delta.get(Event::GateSwitches), THREADS * PER_THREAD * 3);
    assert_eq!(
        delta.get(Event::EnergyFemtojoules),
        THREADS * PER_THREAD * 2
    );
    assert_eq!(delta.energy_pj(), (THREADS * PER_THREAD * 2) as f64 / 1e3);
}

#[test]
fn disabled_counters_do_not_move() {
    let _guard = ENABLE_LOCK.lock().unwrap();
    counters::set_enabled(false);
    let before = counters::get(Event::AdcConversions);
    counters::add(Event::AdcConversions, 99);
    counters::add_energy_joules(1e-12);
    let after = counters::get(Event::AdcConversions);
    counters::set_enabled(true);
    assert_eq!(before, after);
}

#[test]
fn record_max_keeps_high_water_mark() {
    let _guard = ENABLE_LOCK.lock().unwrap();
    counters::set_enabled(true);
    counters::record_max(Event::QueueDepthPeak, 7);
    counters::record_max(Event::QueueDepthPeak, 3);
    assert!(counters::get(Event::QueueDepthPeak) >= 7);
}

#[test]
fn span_nesting_records_hierarchical_paths_and_monotonic_times() {
    {
        let _outer = sei_telemetry::span!("test_outer");
        std::thread::sleep(Duration::from_millis(4));
        {
            let _inner = sei_telemetry::span!("test_inner");
            std::thread::sleep(Duration::from_millis(4));
        }
        {
            let _inner = sei_telemetry::span!("test_inner");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let outer = span::phase("test_outer").expect("outer phase recorded");
    let inner = span::phase("test_outer/test_inner").expect("nested path recorded");
    assert_eq!(outer.calls, 1);
    assert_eq!(inner.calls, 2);
    // A parent's wall clock includes all of its children's.
    assert!(
        outer.total_ns >= inner.total_ns,
        "outer {} < inner {}",
        outer.total_ns,
        inner.total_ns
    );
    assert!(outer.total_ns > 0);
    // Timing is monotone: re-entering a span only accumulates.
    let again = {
        let outer_again = span::SpanGuard::enter("test_outer");
        drop(outer_again);
        span::phase("test_outer").unwrap()
    };
    assert_eq!(again.calls, 2);
    assert!(again.total_ns >= outer.total_ns);
}

fn fixed_report() -> RunReport {
    let phases = vec![
        (
            "table5".to_string(),
            PhaseStat {
                calls: 1,
                total_ns: 2_500_000,
            },
        ),
        (
            "table5/training".to_string(),
            PhaseStat {
                calls: 1,
                total_ns: 1_000_000,
            },
        ),
    ];
    let mut counters = Snapshot::default();
    counters.values[Event::CrossbarReadOps as usize] = 128;
    counters.values[Event::GateSwitches as usize] = 4096;
    counters.values[Event::EnergyFemtojoules as usize] = 1500;
    counters.values[Event::RequestsAdmitted as usize] = 900;
    counters.values[Event::RequestsShed as usize] = 17;
    counters.values[Event::BatchesFormed as usize] = 120;
    counters.values[Event::QueueDepthPeak as usize] = 42;

    let mut report = RunReport::new("table5");
    report.set_u64("seed", 1);
    let mut scale = Value::obj();
    scale.set("train_n", Value::UInt(4000));
    scale.set("test_n", Value::UInt(1000));
    report.set("scale", scale);
    let mut layer = Value::obj();
    layer.set("layer", Value::Str("conv1".to_string()));
    layer.set("quant_err", Value::Float(0.0125));
    report.set("layers", Value::Arr(vec![layer]));
    report.finalize_with(&phases, &counters);
    report
}

#[test]
fn ndjson_report_round_trips() {
    let report = fixed_report();
    let line = report.to_ndjson_line();
    assert!(!line.contains('\n'), "NDJSON record must be a single line");

    let parsed = json::parse(&line).expect("emitted line parses");
    assert_eq!(parsed, *report.as_value());
    assert_eq!(parsed.get("schema").and_then(Value::as_str), Some(SCHEMA));
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("gate_switches"))
            .and_then(Value::as_u64),
        Some(4096)
    );
    // The serving-layer counters survive the round trip too.
    for (key, want) in [
        ("requests_admitted", 900),
        ("requests_shed", 17),
        ("batches_formed", 120),
        ("queue_depth_peak", 42),
    ] {
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get(key))
                .and_then(Value::as_u64),
            Some(want),
            "{key}"
        );
    }
    assert_eq!(
        parsed
            .get("phases")
            .and_then(|p| p.get("table5/training"))
            .and_then(|t| t.get("total_ms"))
            .and_then(Value::as_f64),
        Some(1.0)
    );
}

/// Schema-stability snapshot: the exact serialized form of a fixed report.
/// If this test fails, the report schema changed — bump `SCHEMA` and any
/// downstream diff tooling along with this literal.
#[test]
fn ndjson_schema_snapshot() {
    let expected = concat!(
        "{\"schema\":\"sei-run-report/v1\",\"experiment\":\"table5\",",
        "\"seed\":1,",
        "\"scale\":{\"train_n\":4000,\"test_n\":1000},",
        "\"layers\":[{\"layer\":\"conv1\",\"quant_err\":0.0125}],",
        "\"phases\":{",
        "\"table5\":{\"calls\":1,\"total_ms\":2.5},",
        "\"table5/training\":{\"calls\":1,\"total_ms\":1.0}},",
        "\"counters\":{\"crossbar_read_ops\":128,\"gate_switches\":4096,",
        "\"sense_amp_fires\":0,\"adc_conversions\":0,\"dac_conversions\":0,",
        "\"write_pulses\":0,\"energy_fj\":1500,\"noise_draws\":0,",
        "\"faulted_cells_pinned\":0,",
        "\"spare_column_remaps\":0,\"requests_admitted\":900,",
        "\"requests_shed\":17,\"batches_formed\":120,",
        "\"queue_depth_peak\":42,\"requests_evicted\":0,",
        "\"fleet_scale_ups\":0,\"fleet_scale_downs\":0,",
        "\"writes\":0,\"write_energy_fj\":0,",
        "\"columns_skipped\":0,\"reads_skipped\":0,\"energy_saved_fj\":0,",
        "\"energy_pj\":1.5,\"write_energy_j\":0.0}}"
    );
    assert_eq!(fixed_report().to_ndjson_line(), expected);
}

#[test]
fn report_write_to_appends_ndjson_lines() {
    let dir = std::env::temp_dir().join(format!("sei-telemetry-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.ndjson");
    let path_str = path.to_str().unwrap();

    fixed_report().write_to(path_str).unwrap();
    fixed_report().write_to(path_str).unwrap();

    let body = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        json::parse(line).expect("every NDJSON line parses");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_parser_rejects_garbage_with_offset() {
    let err = json::parse("{\"a\": nope}").unwrap_err();
    assert!(err.to_string().contains("byte"), "{err}");
    assert!(json::parse("").is_err());
    assert!(json::parse("{\"a\":1} extra").is_err());
}

#[test]
fn json_escapes_round_trip() {
    let mut obj = Value::obj();
    obj.set(
        "text",
        Value::Str("line1\nline2\t\"quoted\" \\ ünïcode".to_string()),
    );
    obj.set("neg", Value::Int(-42));
    obj.set("exp", Value::Float(1.25e-7));
    let line = obj.to_json();
    assert_eq!(json::parse(&line).unwrap(), obj);
}
