//! Area / power / energy model for RRAM CNN designs — the quantitative side
//! of Fig. 1 and Table 5.
//!
//! * [`params`] — the per-component energy/area constants. The paper takes
//!   analog-peripheral numbers from \[17–19\] and digital/memory numbers
//!   from \[20\]; since those exact tables are not reproducible, our
//!   defaults are **calibrated** within published ranges so that the
//!   paper's headline ratios hold (ADC+DAC > 98 % of the traditional
//!   design; ~16 % energy saving for 1-bit-input+ADC; > 95 % for SEI;
//!   74–87 % area savings). See `DESIGN.md` §1.
//! * [`report`] — evaluates a [`sei_mapping::layout::DesignPlan`] into
//!   per-layer, per-component energy and area breakdowns.
//! * [`efficiency`] — GOPs/J and the FPGA/GPU comparison constants.
//!
//! # Example
//!
//! ```
//! use sei_cost::{CostParams, CostReport};
//! use sei_mapping::{layout::DesignPlan, DesignConstraints, Structure};
//! use sei_nn::paper;
//!
//! let net = paper::network1(0);
//! let plan = DesignPlan::plan(
//!     &net,
//!     paper::INPUT_SHAPE,
//!     Structure::Sei,
//!     &DesignConstraints::paper_default(),
//! );
//! let report = CostReport::analyze(&plan, &CostParams::default());
//! assert!(report.total_energy_j() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod efficiency;
pub mod params;
pub mod power;
pub mod report;

pub use efficiency::{gops_per_joule, FPGA_GOPS_PER_JOULE, GPU_K40_GOPS_PER_JOULE};
pub use params::CostParams;
pub use power::PowerReport;
pub use report::{ComponentClass, CostReport, LayerCost};
