//! Average power: the bridge between energy-per-picture (Table 5) and the
//! running chip (Fig. 1 is labelled "Power").
//!
//! At a sustained picture rate `f`, each component's average power is its
//! per-picture energy times `f`; combining a [`crate::CostReport`] with a
//! [`sei_mapping::timing::DesignTiming`] therefore yields the wattage
//! breakdown, and lets the §5.3 power-vs-time (replication) trade-off be
//! quantified.

use crate::report::CostReport;
use sei_mapping::timing::DesignTiming;
use serde::{Deserialize, Serialize};

/// Average-power breakdown of a running design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Sustained throughput used (pictures per second).
    pub pictures_per_second: f64,
    /// Average power per [`crate::ComponentClass`] (W).
    pub watts_by_class: [f64; 4],
}

impl PowerReport {
    /// Combines a cost report with a timing analysis at the design's
    /// pipelined throughput.
    pub fn at_throughput(cost: &CostReport, timing: &DesignTiming) -> Self {
        Self::at_rate(cost, timing.throughput_pps())
    }

    /// Average power at an explicit picture rate.
    ///
    /// # Panics
    ///
    /// Panics if `pictures_per_second` is negative.
    pub fn at_rate(cost: &CostReport, pictures_per_second: f64) -> Self {
        assert!(pictures_per_second >= 0.0, "negative picture rate");
        let energy = cost.energy_by_class();
        let mut watts = [0.0f64; 4];
        for (w, e) in watts.iter_mut().zip(energy) {
            *w = e * pictures_per_second;
        }
        PowerReport {
            pictures_per_second,
            watts_by_class: watts,
        }
    }

    /// Total average power (W).
    pub fn total_watts(&self) -> f64 {
        self.watts_by_class.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, CostReport};
    use sei_mapping::layout::DesignPlan;
    use sei_mapping::timing::{DesignTiming, TimingModel};
    use sei_mapping::{DesignConstraints, Structure};
    use sei_nn::paper;

    fn cost_and_timing(structure: Structure) -> (CostReport, DesignTiming) {
        let net = paper::network1(0);
        let plan = DesignPlan::plan(
            &net,
            paper::INPUT_SHAPE,
            structure,
            &DesignConstraints::paper_default(),
        );
        (
            CostReport::analyze(&plan, &CostParams::default()),
            DesignTiming::analyze(&plan, &TimingModel::default(), 1),
        )
    }

    #[test]
    fn power_scales_linearly_with_rate() {
        let (cost, _) = cost_and_timing(Structure::Sei);
        let p1 = PowerReport::at_rate(&cost, 1000.0);
        let p2 = PowerReport::at_rate(&cost, 2000.0);
        assert!((p2.total_watts() - 2.0 * p1.total_watts()).abs() < 1e-9);
    }

    #[test]
    fn sei_runs_cooler_than_traditional_at_same_rate() {
        let (c_sei, _) = cost_and_timing(Structure::Sei);
        let (c_dac, _) = cost_and_timing(Structure::DacAdc);
        let rate = 5000.0;
        let p_sei = PowerReport::at_rate(&c_sei, rate).total_watts();
        let p_dac = PowerReport::at_rate(&c_dac, rate).total_watts();
        assert!(p_sei < p_dac / 10.0, "SEI {p_sei} W vs DAC+ADC {p_dac} W");
    }

    #[test]
    fn traditional_design_is_watt_scale_at_its_own_throughput() {
        // The paper's motivation: CMOS-class designs burn 10–20 W; the
        // traditional RRAM design at full pipelined rate is still
        // watt-scale while SEI is far below.
        let (cost, timing) = cost_and_timing(Structure::DacAdc);
        let p = PowerReport::at_throughput(&cost, &timing);
        assert!(p.total_watts() > 0.05, "{} W", p.total_watts());
        let (c_sei, t_sei) = cost_and_timing(Structure::Sei);
        let p_sei = PowerReport::at_throughput(&c_sei, &t_sei);
        // SEI throughput is higher *and* power lower.
        assert!(p_sei.pictures_per_second >= p.pictures_per_second);
    }

    #[test]
    fn zero_rate_zero_power() {
        let (cost, _) = cost_and_timing(Structure::Sei);
        assert_eq!(PowerReport::at_rate(&cost, 0.0).total_watts(), 0.0);
    }
}
