//! Cost evaluation of a mapped design: per-layer, per-component energy and
//! area — the machinery behind Fig. 1 and Table 5.

use crate::params::CostParams;
use sei_mapping::layout::{DesignPlan, LayerPlan};
use sei_mapping::Structure;
use serde::{Deserialize, Serialize};

/// The component classes of the paper's Fig. 1 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentClass {
    /// Digital-to-analog converters.
    Dac,
    /// Analog-to-digital converters.
    Adc,
    /// The RRAM crossbar cells themselves.
    Rram,
    /// Everything else: sense amps, digital merge/vote logic, pooling
    /// gates, buffers and input fetch (Fig. 1's "Other").
    Other,
}

impl ComponentClass {
    /// All classes in Fig. 1's legend order.
    pub const ALL: [ComponentClass; 4] = [
        ComponentClass::Dac,
        ComponentClass::Adc,
        ComponentClass::Rram,
        ComponentClass::Other,
    ];

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            ComponentClass::Dac => "DAC",
            ComponentClass::Adc => "ADC",
            ComponentClass::Rram => "RRAM",
            ComponentClass::Other => "Other",
        }
    }
}

/// Energy and area of one layer, by component class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer display name ("Conv 1", …).
    pub name: String,
    /// Energy per picture in joules, indexed by [`ComponentClass::ALL`].
    pub energy: [f64; 4],
    /// Area in µm², indexed by [`ComponentClass::ALL`].
    pub area: [f64; 4],
}

impl LayerCost {
    /// Total energy of the layer (J / picture).
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// Total area of the layer (µm²).
    pub fn total_area(&self) -> f64 {
        self.area.iter().sum()
    }

    /// Energy fraction per component class.
    pub fn energy_fractions(&self) -> [f64; 4] {
        fractions(&self.energy)
    }

    /// Area fraction per component class.
    pub fn area_fractions(&self) -> [f64; 4] {
        fractions(&self.area)
    }
}

fn fractions(v: &[f64; 4]) -> [f64; 4] {
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return [0.0; 4];
    }
    [v[0] / total, v[1] / total, v[2] / total, v[3] / total]
}

/// Complete cost report for one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// The structure evaluated.
    pub structure: Structure,
    /// Per-layer costs in network order.
    pub layers: Vec<LayerCost>,
    /// Design-level energy not attributable to a layer (input-picture
    /// fetch), accounted as "Other".
    pub input_fetch_energy: f64,
}

impl CostReport {
    /// Evaluates a design plan under the given constants.
    pub fn analyze(plan: &DesignPlan, params: &CostParams) -> Self {
        let data_bits = plan.structure.data_bits();
        let layers = plan
            .layers
            .iter()
            .map(|l| layer_cost(l, plan.structure, data_bits, params))
            .collect();
        CostReport {
            structure: plan.structure,
            layers,
            input_fetch_energy: plan.input_pixels as f64 * 8.0 * params.input_fetch_bit_energy,
        }
    }

    /// Total energy per picture (J), including input fetch.
    pub fn total_energy_j(&self) -> f64 {
        self.layers.iter().map(LayerCost::total_energy).sum::<f64>() + self.input_fetch_energy
    }

    /// Total area (µm²).
    pub fn total_area_um2(&self) -> f64 {
        self.layers.iter().map(LayerCost::total_area).sum()
    }

    /// Design-wide energy by component class (input fetch under "Other").
    pub fn energy_by_class(&self) -> [f64; 4] {
        let mut totals = [0.0f64; 4];
        for l in &self.layers {
            for (t, e) in totals.iter_mut().zip(&l.energy) {
                *t += e;
            }
        }
        totals[3] += self.input_fetch_energy;
        totals
    }

    /// Design-wide area by component class.
    pub fn area_by_class(&self) -> [f64; 4] {
        let mut totals = [0.0f64; 4];
        for l in &self.layers {
            for (t, a) in totals.iter_mut().zip(&l.area) {
                *t += a;
            }
        }
        totals
    }

    /// Fraction of total energy consumed by DACs plus ADCs — the paper's
    /// ">98 % of the area and power" observation for the traditional
    /// design.
    pub fn converter_energy_fraction(&self) -> f64 {
        let by = self.energy_by_class();
        (by[0] + by[1]) / self.total_energy_j().max(f64::MIN_POSITIVE)
    }

    /// Fraction of total area consumed by converters.
    pub fn converter_area_fraction(&self) -> f64 {
        let by = self.area_by_class();
        (by[0] + by[1]) / self.total_area_um2().max(f64::MIN_POSITIVE)
    }

    /// A copy of this report with `frac` of the RRAM read energy removed —
    /// pricing a *measured* activation-estimator skip rate (`SEI_ESTIMATOR`,
    /// DESIGN.md §14) into the static plan. The RRAM energy class is
    /// exactly the per-picture cell read energy, so scaling it by
    /// `1 − frac` applies the network-measured saved-read fraction;
    /// the rate is applied uniformly across layers (the plan carries no
    /// per-layer skip rates — an approximation documented in
    /// EXPERIMENTS.md). Area is untouched: skipping reads saves energy,
    /// not silicon.
    #[must_use]
    pub fn with_rram_read_saving(&self, frac: f64) -> CostReport {
        let keep = 1.0 - frac.clamp(0.0, 1.0);
        let mut out = self.clone();
        for l in &mut out.layers {
            l.energy[2] *= keep;
        }
        out
    }

    /// Saving of this report relative to a baseline, as a fraction in
    /// `[0, 1]` (negative if this design costs more).
    pub fn energy_saving_vs(&self, baseline: &CostReport) -> f64 {
        1.0 - self.total_energy_j() / baseline.total_energy_j().max(f64::MIN_POSITIVE)
    }

    /// Area saving relative to a baseline.
    pub fn area_saving_vs(&self, baseline: &CostReport) -> f64 {
        1.0 - self.total_area_um2() / baseline.total_area_um2().max(f64::MIN_POSITIVE)
    }
}

fn layer_cost(
    l: &LayerPlan,
    structure: Structure,
    data_bits: u32,
    params: &CostParams,
) -> LayerCost {
    let computes = l.computes_per_picture as f64;

    // --- energy (per picture) ---
    // Input-layer DACs always convert 8-bit pixels; hidden DacAdc layers
    // convert at the structure's data precision. Each unique input element
    // is converted once per picture (sample-and-hold reuse).
    let dac_bits = if l.input_is_image { 8 } else { data_bits };
    let e_dac = l.dac_conversions as f64 * params.dac_energy_at(dac_bits);
    let e_adc = l.adc_conversions as f64 * params.adc_energy;
    let e_rram = l.total_cells() as f64 * computes * params.cell_read_energy;
    let e_sa = l.sas as f64 * computes * params.sa_energy;
    let e_digital = (l.merge_adders + l.vote_units) as f64 * computes * params.digital_op_energy
        + l.pool_or_gates as f64 * params.or_gate_energy;
    let e_buffer = l.output_elements as f64 * data_bits as f64 * params.buffer_bit_energy;

    // --- area ---
    let a_dac = l.dacs as f64 * params.dac_area;
    let a_adc = l.adcs as f64 * params.adc_area;
    let a_rram =
        l.total_cells() as f64 * params.cell_area + l.total_rows() as f64 * params.row_driver_area;
    let a_sa = l.sas as f64 * params.sa_area;
    let a_digital = (l.merge_adders + l.vote_units) as f64 * params.digital_unit_area
        + l.pool_or_gates as f64 * params.or_gate_area;
    let a_buffer = l.output_elements as f64 * data_bits as f64 * params.buffer_bit_area;

    let _ = structure;
    LayerCost {
        name: l.name.clone(),
        energy: [e_dac, e_adc, e_rram, e_sa + e_digital + e_buffer],
        area: [a_dac, a_adc, a_rram, a_sa + a_digital + a_buffer],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sei_mapping::DesignConstraints;
    use sei_nn::paper;

    fn report(structure: Structure, max: usize) -> CostReport {
        let net = paper::network1(0);
        let plan = DesignPlan::plan(
            &net,
            paper::INPUT_SHAPE,
            structure,
            &DesignConstraints::paper_default().with_max_crossbar(max),
        );
        CostReport::analyze(&plan, &CostParams::default())
    }

    #[test]
    fn fig1_converters_dominate_traditional_design() {
        // Fig. 1: "ADCs and DACs cost more than 98% of the area and power".
        let r = report(Structure::DacAdc, 512);
        assert!(
            r.converter_energy_fraction() > 0.85,
            "converter energy fraction {}",
            r.converter_energy_fraction()
        );
        assert!(
            r.converter_area_fraction() > 0.6,
            "converter area fraction {}",
            r.converter_area_fraction()
        );
        // Per-layer: every conv layer is converter-dominated too.
        for l in &r.layers {
            let f = l.energy_fractions();
            assert!(f[0] + f[1] > 0.8, "{}: {f:?}", l.name);
        }
    }

    #[test]
    fn table5_energy_savings_shape() {
        let base = report(Structure::DacAdc, 512);
        let onebit = report(Structure::OneBitInputAdc, 512);
        let sei = report(Structure::Sei, 512);
        let s1 = onebit.energy_saving_vs(&base);
        let s2 = sei.energy_saving_vs(&base);
        // Paper: 16.08 % and 96.52 % for Network 1 at 512.
        assert!((0.05..0.40).contains(&s1), "1-bit saving {s1}");
        assert!(s2 > 0.90, "SEI saving {s2}");
        assert!(s2 > s1);
    }

    #[test]
    fn table5_area_savings_shape() {
        let base = report(Structure::DacAdc, 512);
        let onebit = report(Structure::OneBitInputAdc, 512);
        let sei = report(Structure::Sei, 512);
        let a1 = onebit.area_saving_vs(&base);
        let a2 = sei.area_saving_vs(&base);
        // Paper: 47.59 % and 86.57 %.
        assert!((0.30..0.65).contains(&a1), "1-bit area saving {a1}");
        assert!((0.70..0.97).contains(&a2), "SEI area saving {a2}");
    }

    #[test]
    fn smaller_crossbars_cost_more_in_merged_designs() {
        // Table 5: Network 1 DAC+ADC rises from 74.25 to 93.75 µJ when the
        // crossbar limit halves (more row chunks → more conversions).
        let e512 = report(Structure::DacAdc, 512).total_energy_j();
        let e256 = report(Structure::DacAdc, 256).total_energy_j();
        assert!(e256 > e512 * 1.1, "512: {e512}, 256: {e256}");
    }

    #[test]
    fn input_dacs_are_small_fraction_of_traditional_chip() {
        // §3.2: input-layer DACs ≈ 3 % energy / 1 % area of the whole chip.
        let r = report(Structure::DacAdc, 512);
        let input_dac_energy = r.layers[0].energy[0];
        let frac = input_dac_energy / r.total_energy_j();
        assert!(
            (0.005..0.15).contains(&frac),
            "input DAC energy fraction {frac}"
        );
    }

    #[test]
    fn sei_energy_in_paper_magnitude() {
        // Paper Table 5: Network 1 SEI = 2.58 µJ/picture. Our calibrated
        // constants should land within ~3× of that.
        let e = report(Structure::Sei, 512).total_energy_j();
        assert!(
            (0.8e-6..8e-6).contains(&e),
            "SEI energy {e} J should be microjoule-scale"
        );
    }

    #[test]
    fn rram_read_saving_scales_only_the_rram_class() {
        let r = report(Structure::Sei, 512);
        let adj = r.with_rram_read_saving(0.4);
        let before = r.energy_by_class();
        let after = adj.energy_by_class();
        assert!((after[2] - before[2] * 0.6).abs() < 1e-18 + before[2] * 1e-12);
        for c in [0usize, 1, 3] {
            assert_eq!(after[c], before[c], "class {c} untouched");
        }
        assert_eq!(adj.total_area_um2(), r.total_area_um2());
        // Out-of-range fractions clamp instead of going negative.
        assert_eq!(r.with_rram_read_saving(2.0).energy_by_class()[2], 0.0);
        assert_eq!(
            r.with_rram_read_saving(-1.0).energy_by_class()[2],
            before[2]
        );
    }

    #[test]
    fn energy_by_class_sums_to_total() {
        let r = report(Structure::OneBitInputAdc, 512);
        let sum: f64 = r.energy_by_class().iter().sum();
        assert!((sum - r.total_energy_j()).abs() < 1e-12 * sum.max(1.0));
    }
}
