//! Energy efficiency (GOPs/J) and the platform comparison of §5.3.
//!
//! The paper reports > 2000 GOPs/J for SEI designs, "about 2 orders of
//! magnitude higher than state-of-the-art FPGA \[2\] and GPU
//! implementations".

/// Energy efficiency of the FPGA design of Zhang et al. \[2\]
/// (61.62 GOPs at 18.61 W), in GOPs/J.
pub const FPGA_GOPS_PER_JOULE: f64 = 61.62 / 18.61;

/// Approximate CNN inference efficiency of an Nvidia Tesla K40
/// (2013-era, ~4.3 TFLOPS peak at 235 W, realistic CNN utilisation
/// ~20–40 %), in GOPs/J.
pub const GPU_K40_GOPS_PER_JOULE: f64 = 14.0;

/// Giga-operations per joule for a workload of `ops` operations consuming
/// `energy_j` joules.
///
/// # Panics
///
/// Panics if `energy_j` is not positive.
pub fn gops_per_joule(ops: f64, energy_j: f64) -> f64 {
    assert!(energy_j > 0.0, "energy must be positive");
    ops / 1e9 / energy_j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, CostReport};
    use sei_mapping::{layout::DesignPlan, DesignConstraints, Structure};
    use sei_nn::paper;

    #[test]
    fn fpga_constant_matches_cited_paper() {
        assert!((FPGA_GOPS_PER_JOULE - 3.31).abs() < 0.02);
    }

    #[test]
    fn sei_efficiency_two_orders_over_platforms() {
        // §5.3: SEI achieves > 2000 GOPs/J, ~2 orders of magnitude above
        // FPGA/GPU. We evaluate with the paper's Table 2 complexity figure.
        let net = paper::network1(0);
        let plan = DesignPlan::plan(
            &net,
            paper::INPUT_SHAPE,
            Structure::Sei,
            &DesignConstraints::paper_default(),
        );
        let report = CostReport::analyze(&plan, &CostParams::default());
        let gopj = gops_per_joule(
            paper::PaperNetwork::Network1.paper_gops() * 1e9,
            report.total_energy_j(),
        );
        assert!(gopj > 800.0, "SEI efficiency {gopj} GOPs/J");
        assert!(gopj / FPGA_GOPS_PER_JOULE > 100.0);
        assert!(gopj / GPU_K40_GOPS_PER_JOULE > 50.0);
    }

    #[test]
    #[should_panic(expected = "energy must be positive")]
    fn zero_energy_rejected() {
        let _ = gops_per_joule(1e9, 0.0);
    }
}
