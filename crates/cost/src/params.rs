//! Per-component energy and area constants.
//!
//! # Provenance and calibration
//!
//! The paper sources analog peripheral numbers from \[17\] (St Amant,
//! limited-precision analog acceleration), \[18\] (a 20 nm DAC) and \[19\]
//! (Li et al., RRAM interface co-optimization), and digital/memory energy
//! from \[20\] (Han et al.). None of those publish a single coherent
//! constant table, so the defaults below are **calibrated**: each value
//! sits inside the range published for 2014–2016-era implementations, and
//! together they reproduce the paper's headline ratios (see the tests at
//! the bottom of `report.rs` and `EXPERIMENTS.md`):
//!
//! | Constant | Default | Published range (era) |
//! |---|---|---|
//! | 8-bit ADC conversion | 1.34 nJ | 0.1–5 nJ for 8-bit SAR/pipeline at MS/s rates |
//! | 8-bit DAC conversion (per input element, S&H reuse) | 4 nJ | driver incl. hold/settle across reuse window |
//! | RRAM cell read | 1 fJ | `V²·g·t` ≈ 0.2²·2.5 µS·10 ns |
//! | SA decision | 1 pJ | 0.1–10 pJ clocked comparator |
//! | digital merge op | 30 fJ | 8–16-bit add at 45–65 nm |
//! | buffer access / bit | 10 pJ | register-file/SRAM incl. control |
//! | input fetch / bit | 80 pJ | off-chip/weight-buffer mix per \[20\] |
//! | crossbar row write–verify pass (latency) | 176 µs | RRAM write–verify per array row (MNSIM-derived figures) |
//! | crossbar row write–verify pass (energy) | 676 nJ | RRAM write–verify per array row (same source) |
//!
//! The two **write** constants cost reprogramming a mapped model on live
//! tiles (the `sei-lifecycle` subsystem); reads never pay them. They are
//! taken from the MNSIM-style RRAM latency/power model excerpted in the
//! repo's `SNIPPETS.md` (snippet 3), whose RRAM branch charges
//! `write_latency = 1.76e-4 s` and `write_energy = 6.76e-7 J` per array
//! row of write–verify programming (the ReRAM-CMOS branch in the same
//! snippet is ~340× faster at `5.12e-7 s` / `2.2e-9 J` per row; we keep
//! the conservative RRAM figures, which also make update windows visible
//! at serving timescales).
//!
//! Area constants are calibrated the same way (8-bit SAR ADC ≈ 0.01 mm²,
//! DAC ≈ 0.003 mm², offset-trimmed SA ≈ 0.003 mm², ~10 µm² per crossbar
//! row of drivers/decoder, 1T1R cell ≈ 0.5 µm², 2 µm²/buffer bit).

use serde::{Deserialize, Serialize};

/// Energy (joules) and area (µm²) constants for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Energy of one 8-bit DAC conversion (J).
    pub dac_energy: f64,
    /// Energy of one 8-bit ADC conversion (J).
    pub adc_energy: f64,
    /// Energy of reading one RRAM cell for one compute cycle (J).
    pub cell_read_energy: f64,
    /// Energy of one sense-amp decision (J).
    pub sa_energy: f64,
    /// Energy of one digital merge/vote operation (J).
    pub digital_op_energy: f64,
    /// Energy of one OR-pooling gate evaluation (J).
    pub or_gate_energy: f64,
    /// Energy per buffered bit (write + read) of intermediate data (J).
    pub buffer_bit_energy: f64,
    /// Energy per input-picture bit fetched from memory (J).
    pub input_fetch_bit_energy: f64,
    /// Latency of one write–verify programming pass over one crossbar row
    /// (s). Provenance: SNIPPETS.md snippet 3, RRAM branch
    /// (`write_latency = 1.76e-4` s per row).
    pub row_write_latency_s: f64,
    /// Energy of one write–verify programming pass over one crossbar row
    /// (J). Provenance: SNIPPETS.md snippet 3, RRAM branch
    /// (`write_energy = 6.76e-7` J per row).
    pub row_write_energy: f64,

    /// Area of one 8-bit DAC (µm²).
    pub dac_area: f64,
    /// Area of one 8-bit ADC (µm²).
    pub adc_area: f64,
    /// Area of one RRAM cell (1T1R) (µm²).
    pub cell_area: f64,
    /// Area of one sense amplifier (µm²).
    pub sa_area: f64,
    /// Area of drivers + decoder per physical crossbar row (µm²).
    pub row_driver_area: f64,
    /// Area of one digital merge/vote unit (µm²).
    pub digital_unit_area: f64,
    /// Area of one OR gate (µm²).
    pub or_gate_area: f64,
    /// Area per buffered bit of intermediate data (µm²).
    pub buffer_bit_area: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            dac_energy: 4.0e-9,
            adc_energy: 1.34e-9,
            cell_read_energy: 1e-15,
            sa_energy: 1e-12,
            digital_op_energy: 30e-15,
            or_gate_energy: 1e-15,
            buffer_bit_energy: 10e-12,
            input_fetch_bit_energy: 80e-12,
            row_write_latency_s: 1.76e-4,
            row_write_energy: 6.76e-7,

            dac_area: 3_000.0,
            adc_area: 10_000.0,
            cell_area: 0.5,
            sa_area: 3_000.0,
            row_driver_area: 10.0,
            digital_unit_area: 200.0,
            or_gate_area: 2.0,
            buffer_bit_area: 2.0,
        }
    }
}

impl CostParams {
    /// Scales the energy of a converter with its bit width relative to the
    /// 8-bit baseline: converter energy grows roughly 4× per added bit pair
    /// (`~2^bits` for SAR-class converters at fixed rate); we use a simple
    /// `2^(bits-8)` scaling, exact at 8 bits.
    pub fn adc_energy_at(&self, bits: u32) -> f64 {
        self.adc_energy * 2f64.powi(bits as i32 - 8)
    }

    /// DAC energy at a given resolution (same scaling law as
    /// [`CostParams::adc_energy_at`]).
    pub fn dac_energy_at(&self, bits: u32) -> f64 {
        self.dac_energy * 2f64.powi(bits as i32 - 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_positive() {
        let p = CostParams::default();
        for v in [
            p.dac_energy,
            p.adc_energy,
            p.cell_read_energy,
            p.sa_energy,
            p.digital_op_energy,
            p.or_gate_energy,
            p.buffer_bit_energy,
            p.input_fetch_bit_energy,
            p.row_write_latency_s,
            p.row_write_energy,
            p.dac_area,
            p.adc_area,
            p.cell_area,
            p.sa_area,
            p.row_driver_area,
            p.digital_unit_area,
            p.or_gate_area,
            p.buffer_bit_area,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn converters_dominate_cells() {
        // The premise of the whole paper: a conversion costs orders of
        // magnitude more than a cell read.
        let p = CostParams::default();
        assert!(p.adc_energy / p.cell_read_energy > 1e4);
        assert!(p.dac_energy / p.cell_read_energy > 1e4);
    }

    #[test]
    fn writes_dominate_reads() {
        // The asymmetry the lifecycle scheduler exists to manage: one
        // row write–verify pass costs ~9 orders of magnitude more than
        // a cell read and takes ~176 µs — long enough that reprogramming
        // a mapped model is visible at serving timescales.
        let p = CostParams::default();
        assert!(p.row_write_energy / p.cell_read_energy > 1e8);
        assert!(p.row_write_latency_s > 1e-5);
    }

    #[test]
    fn bit_scaling_is_exact_at_8() {
        let p = CostParams::default();
        assert_eq!(p.adc_energy_at(8), p.adc_energy);
        assert!((p.adc_energy_at(9) / p.adc_energy - 2.0).abs() < 1e-12);
        assert!((p.dac_energy_at(7) / p.dac_energy - 0.5).abs() < 1e-12);
    }
}
