//! Property test closing the §5.3 trade-off triangle: replication buys
//! throughput, so average power at the replicated design's own pipelined
//! rate is monotonically non-decreasing in the replication factor, while
//! the per-picture energy (the Table 5 metric) stays invariant.

use proptest::prelude::*;
use sei_cost::{CostParams, CostReport, PowerReport};
use sei_mapping::layout::DesignPlan;
use sei_mapping::timing::{DesignTiming, TimingModel};
use sei_mapping::{DesignConstraints, Structure};
use sei_nn::paper;

fn structure_strategy() -> impl Strategy<Value = Structure> {
    (0usize..Structure::ALL.len()).prop_map(|i| Structure::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replication_raises_full_rate_power_not_energy(
        structure in structure_strategy(),
        replication in 1usize..64,
    ) {
        let net = paper::network1(0);
        let plan = DesignPlan::plan(
            &net,
            paper::INPUT_SHAPE,
            structure,
            &DesignConstraints::paper_default(),
        );
        let cost = CostReport::analyze(&plan, &CostParams::default());
        let model = TimingModel::default();
        let lo = DesignTiming::analyze(&plan, &model, replication);
        let hi = DesignTiming::analyze(&plan, &model, replication + 1);
        let p_lo = PowerReport::at_throughput(&cost, &lo);
        let p_hi = PowerReport::at_throughput(&cost, &hi);
        // Same per-picture energy driven at a ≥ rate ⇒ ≥ average power.
        prop_assert!(p_hi.total_watts() >= p_lo.total_watts());
        prop_assert!(p_hi.pictures_per_second >= p_lo.pictures_per_second);
        // Power is exactly energy/picture × rate: the energy metric the
        // paper reports is the replication-invariant one.
        let energy_j = cost.total_energy_j();
        prop_assert!(
            (p_lo.total_watts() - energy_j * lo.throughput_pps()).abs()
                <= 1e-9 * p_lo.total_watts().max(1.0)
        );
        prop_assert!(
            (p_hi.total_watts() - energy_j * hi.throughput_pps()).abs()
                <= 1e-9 * p_hi.total_watts().max(1.0)
        );
    }
}
