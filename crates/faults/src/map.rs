//! Per-cell stuck-at fault maps over a physical crossbar.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sei_telemetry::json::{self, Value};
use serde::{Deserialize, Serialize};

/// The two stuck-at fault classes of an RRAM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Stuck at the low-conductance bound (`g_min`): the cell reads as
    /// fraction 0 regardless of its programmed target. The dominant class
    /// for formation failures ("stuck open").
    StuckAtZero,
    /// Stuck at the high-conductance bound (`g_max`): the cell reads as
    /// fraction 1 — a shorted filament.
    StuckAtOne,
}

impl FaultKind {
    /// The fraction-of-full-scale value a cell of this kind is pinned to.
    #[must_use]
    pub fn pinned_fraction(self) -> f64 {
        match self {
            FaultKind::StuckAtZero => 0.0,
            FaultKind::StuckAtOne => 1.0,
        }
    }

    /// Stable schema tag used in serialized maps.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::StuckAtZero => "sa0",
            FaultKind::StuckAtOne => "sa1",
        }
    }

    fn from_tag(tag: &str) -> Option<FaultKind> {
        match tag {
            "sa0" => Some(FaultKind::StuckAtZero),
            "sa1" => Some(FaultKind::StuckAtOne),
            _ => None,
        }
    }
}

/// Independent per-cell stuck-at rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that a cell is stuck at `g_min`.
    pub sa0_rate: f64,
    /// Probability that a cell is stuck at `g_max`.
    pub sa1_rate: f64,
}

impl FaultModel {
    /// A model with explicit per-class rates.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are in `[0, 1]` and their sum is ≤ 1.
    #[must_use]
    pub fn new(sa0_rate: f64, sa1_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sa0_rate)
                && (0.0..=1.0).contains(&sa1_rate)
                && sa0_rate + sa1_rate <= 1.0,
            "fault rates must be probabilities with sa0 + sa1 <= 1, \
             got sa0 {sa0_rate}, sa1 {sa1_rate}"
        );
        FaultModel { sa0_rate, sa1_rate }
    }

    /// A model with a given **total** stuck-at rate, split between the
    /// classes at the 9.04:1.75 SA0:SA1 ratio reported for fabricated
    /// arrays (most faults are stuck open).
    #[must_use]
    pub fn uniform(total_rate: f64) -> Self {
        let sa0_share = 9.04 / (9.04 + 1.75);
        FaultModel::new(total_rate * sa0_share, total_rate * (1.0 - sa0_share))
    }

    /// Total per-cell fault probability.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.sa0_rate + self.sa1_rate
    }
}

/// A per-cell stuck-at fault map over a `rows × cols` physical array.
///
/// Cells are stored densely (one byte each); generation draws one uniform
/// per cell in row-major order from a single seeded `StdRng`, so a `(rows,
/// cols, model, seed)` tuple always produces the same map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    /// 0 = healthy, 1 = SA0, 2 = SA1; row-major.
    cells: Vec<u8>,
}

const SCHEMA: &str = "sei-fault-map/v1";

impl FaultMap {
    /// An all-healthy map.
    #[must_use]
    pub fn empty(rows: usize, cols: usize) -> Self {
        FaultMap {
            rows,
            cols,
            cells: vec![0; rows * cols],
        }
    }

    /// Draws a map from independent per-cell rates, row-major from one
    /// seeded stream.
    #[must_use]
    pub fn generate(rows: usize, cols: usize, model: &FaultModel, seed: u64) -> Self {
        let mut map = FaultMap::empty(rows, cols);
        if model.total_rate() == 0.0 {
            return map;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for cell in &mut map.cells {
            let u: f64 = rng.gen();
            *cell = if u < model.sa0_rate {
                1
            } else if u < model.sa0_rate + model.sa1_rate {
                2
            } else {
                0
            };
        }
        map
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The fault (if any) at cell `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[must_use]
    pub fn fault(&self, r: usize, c: usize) -> Option<FaultKind> {
        assert!(
            r < self.rows && c < self.cols,
            "fault map index out of bounds"
        );
        match self.cells[r * self.cols + c] {
            1 => Some(FaultKind::StuckAtZero),
            2 => Some(FaultKind::StuckAtOne),
            _ => None,
        }
    }

    /// Sets or clears the fault at cell `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    pub fn set_fault(&mut self, r: usize, c: usize, kind: Option<FaultKind>) {
        assert!(
            r < self.rows && c < self.cols,
            "fault map index out of bounds"
        );
        self.cells[r * self.cols + c] = match kind {
            None => 0,
            Some(FaultKind::StuckAtZero) => 1,
            Some(FaultKind::StuckAtOne) => 2,
        };
    }

    /// Total number of faulted cells.
    #[must_use]
    pub fn count(&self) -> usize {
        self.cells.iter().filter(|&&c| c != 0).count()
    }

    /// Fraction of faulted cells.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.cells.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.cells.len() as f64
        }
    }

    /// Number of faulted cells in column `c` (all rows).
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    #[must_use]
    pub fn column_burden(&self, c: usize) -> usize {
        assert!(c < self.cols, "fault map column out of bounds");
        (0..self.rows)
            .filter(|&r| self.cells[r * self.cols + c] != 0)
            .count()
    }

    /// Number of faulted cells in the row band `[r0, r1)` restricted to
    /// columns `[0, cols_used)` — the burden of one logical slot.
    ///
    /// # Panics
    ///
    /// Panics when the band or column limit is out of bounds.
    #[must_use]
    pub fn band_burden(&self, r0: usize, r1: usize, cols_used: usize) -> usize {
        assert!(r0 <= r1 && r1 <= self.rows && cols_used <= self.cols);
        (r0..r1)
            .map(|r| {
                self.cells[r * self.cols..r * self.cols + cols_used]
                    .iter()
                    .filter(|&&c| c != 0)
                    .count()
            })
            .sum()
    }

    /// Serializes to the `sei-fault-map/v1` JSON value: dimensions plus a
    /// sparse `[row, col, "sa0"|"sa1"]` fault list.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut faults = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                if let Some(kind) = self.fault(r, c) {
                    faults.push(Value::Arr(vec![
                        Value::UInt(r as u64),
                        Value::UInt(c as u64),
                        Value::Str(kind.tag().to_string()),
                    ]));
                }
            }
        }
        let mut obj = Value::obj();
        obj.set("schema", Value::Str(SCHEMA.to_string()))
            .set("rows", Value::UInt(self.rows as u64))
            .set("cols", Value::UInt(self.cols as u64))
            .set("faults", Value::Arr(faults));
        obj
    }

    /// Compact single-line JSON of [`FaultMap::to_json`].
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }

    /// Parses a map from its `sei-fault-map/v1` JSON text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: malformed
    /// JSON, wrong schema tag, missing dimensions, or an out-of-range
    /// fault entry.
    pub fn from_json_str(input: &str) -> Result<FaultMap, String> {
        let value = json::parse(input).map_err(|e| format!("malformed JSON: {e:?}"))?;
        FaultMap::from_json(&value)
    }

    /// Parses a map from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaultMap::from_json_str`].
    pub fn from_json(value: &Value) -> Result<FaultMap, String> {
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("expected schema {SCHEMA}, got {schema}"));
        }
        let rows = value
            .get("rows")
            .and_then(Value::as_u64)
            .ok_or("missing rows")? as usize;
        let cols = value
            .get("cols")
            .and_then(Value::as_u64)
            .ok_or("missing cols")? as usize;
        let mut map = FaultMap::empty(rows, cols);
        let faults = match value.get("faults") {
            Some(Value::Arr(items)) => items,
            _ => return Err("missing faults array".into()),
        };
        for entry in faults {
            let fields = match entry {
                Value::Arr(f) if f.len() == 3 => f,
                _ => return Err("fault entry must be [row, col, kind]".into()),
            };
            let r = fields[0].as_u64().ok_or("fault row must be an integer")? as usize;
            let c = fields[1].as_u64().ok_or("fault col must be an integer")? as usize;
            let tag = fields[2].as_str().ok_or("fault kind must be a string")?;
            let kind = FaultKind::from_tag(tag).ok_or_else(|| format!("unknown kind {tag}"))?;
            if r >= rows || c >= cols {
                return Err(format!("fault ({r}, {c}) outside {rows}x{cols} map"));
            }
            map.set_fault(r, c, Some(kind));
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let model = FaultModel::uniform(0.1);
        let a = FaultMap::generate(40, 30, &model, 9);
        let b = FaultMap::generate(40, 30, &model, 9);
        let c = FaultMap::generate(40, 30, &model, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_rate_tracks_model() {
        let model = FaultModel::uniform(0.1);
        let map = FaultMap::generate(200, 200, &model, 1);
        assert!((map.rate() - 0.1).abs() < 0.01, "rate {}", map.rate());
    }

    #[test]
    fn zero_rate_generates_clean_map() {
        let map = FaultMap::generate(16, 16, &FaultModel::uniform(0.0), 3);
        assert_eq!(map.count(), 0);
    }

    #[test]
    fn burdens_count_faults() {
        let mut map = FaultMap::empty(4, 3);
        map.set_fault(0, 1, Some(FaultKind::StuckAtZero));
        map.set_fault(2, 1, Some(FaultKind::StuckAtOne));
        map.set_fault(3, 2, Some(FaultKind::StuckAtOne));
        assert_eq!(map.column_burden(0), 0);
        assert_eq!(map.column_burden(1), 2);
        assert_eq!(map.band_burden(0, 2, 3), 1);
        assert_eq!(map.band_burden(0, 4, 2), 2); // col 2 excluded
        assert_eq!(map.count(), 3);
    }

    #[test]
    fn json_round_trip_by_hand() {
        let mut map = FaultMap::empty(3, 5);
        map.set_fault(1, 4, Some(FaultKind::StuckAtOne));
        map.set_fault(2, 0, Some(FaultKind::StuckAtZero));
        let text = map.to_json_string();
        assert!(text.contains("sei-fault-map/v1"));
        let back = FaultMap::from_json_str(&text).unwrap();
        assert_eq!(map, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(FaultMap::from_json_str("{}").is_err());
        assert!(FaultMap::from_json_str("not json").is_err());
        let wrong = r#"{"schema":"sei-fault-map/v2","rows":1,"cols":1,"faults":[]}"#;
        assert!(FaultMap::from_json_str(wrong).is_err());
        let oob = r#"{"schema":"sei-fault-map/v1","rows":1,"cols":1,"faults":[[5,0,"sa0"]]}"#;
        assert!(FaultMap::from_json_str(oob).is_err());
    }

    #[test]
    #[should_panic(expected = "sa0 + sa1")]
    fn model_rejects_impossible_rates() {
        let _ = FaultModel::new(0.8, 0.7);
    }
}
