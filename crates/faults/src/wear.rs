//! Write-wear accounting: cumulative per-tile write counts against an
//! endurance budget.
//!
//! The endurance model ([`crate::EnduranceModel`]) answers "what is the
//! failure probability of `p` more pulses?"; the serving stack needs the
//! dual bookkeeping question: "how many row-write passes has each live
//! tile absorbed, and which tile should the next reprogram land on?" A
//! [`WearLedger`] tracks exactly that — cumulative writes per tile, a
//! budget derived from the endurance model (or given directly), and the
//! wear-ordering queries the lifecycle scheduler's rotation policy uses.
//!
//! Everything here is plain integer arithmetic on state the caller
//! mutates explicitly: no RNG, no clock, no interior mutability — so a
//! ledger evolves identically whatever thread count or event
//! interleaving drives it (the same determinism contract as
//! [`crate::mix`]).

use crate::EnduranceModel;

/// Cumulative write-wear per tile, against a shared per-tile budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WearLedger {
    writes: Vec<u64>,
    budget: u64,
}

impl WearLedger {
    /// A fresh ledger over `tiles` tiles with the given per-tile write
    /// budget (row-write passes).
    ///
    /// # Panics
    ///
    /// Panics when `budget` is zero — a zero budget would mark every
    /// tile exhausted before its first write, which is always a
    /// configuration bug.
    #[must_use]
    pub fn new(tiles: usize, budget: u64) -> WearLedger {
        assert!(budget > 0, "write budget must be positive");
        WearLedger {
            writes: vec![0; tiles],
            budget,
        }
    }

    /// A ledger whose budget is the endurance model's largest pulse
    /// count with failure probability at most `max_failure_probability`
    /// (see [`EnduranceModel::pulse_budget`]), floored at one pulse.
    #[must_use]
    pub fn from_endurance(
        tiles: usize,
        model: &EnduranceModel,
        max_failure_probability: f64,
    ) -> WearLedger {
        WearLedger::new(tiles, model.pulse_budget(max_failure_probability).max(1))
    }

    /// Number of tiles tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the ledger tracks no tiles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// The shared per-tile write budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Records `pulses` row-write passes on `tile`, returning its new
    /// cumulative count. Saturating: a tile past its budget keeps
    /// counting (the caller decides whether to rotate or keep burning).
    pub fn record(&mut self, tile: usize, pulses: u64) -> u64 {
        let w = &mut self.writes[tile];
        *w = w.saturating_add(pulses);
        *w
    }

    /// Cumulative writes on one tile.
    #[must_use]
    pub fn writes(&self, tile: usize) -> u64 {
        self.writes[tile]
    }

    /// Cumulative writes across all tiles.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Budget remaining on one tile (zero once exhausted).
    #[must_use]
    pub fn remaining(&self, tile: usize) -> u64 {
        self.budget.saturating_sub(self.writes[tile])
    }

    /// Fraction of the budget consumed on one tile (may exceed 1 when
    /// the caller kept writing past exhaustion).
    #[must_use]
    pub fn wear_fraction(&self, tile: usize) -> f64 {
        self.writes[tile] as f64 / self.budget as f64
    }

    /// Whether one tile has consumed its whole budget.
    #[must_use]
    pub fn exhausted(&self, tile: usize) -> bool {
        self.writes[tile] >= self.budget
    }

    /// Number of tiles that have consumed their whole budget.
    #[must_use]
    pub fn exhausted_count(&self) -> u64 {
        self.writes.iter().filter(|&&w| w >= self.budget).count() as u64
    }

    /// Highest cumulative write count over all tiles (zero when empty).
    #[must_use]
    pub fn max_writes(&self) -> u64 {
        self.writes.iter().copied().max().unwrap_or(0)
    }

    /// The per-tile write counts, in tile order (the burden vector the
    /// rotation policy feeds to [`crate::burden_order`]).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_budget_tracks() {
        let mut l = WearLedger::new(3, 100);
        assert_eq!(l.record(1, 40), 40);
        assert_eq!(l.record(1, 70), 110);
        assert_eq!(l.writes(0), 0);
        assert_eq!(l.writes(1), 110);
        assert_eq!(l.total_writes(), 110);
        assert_eq!(l.remaining(1), 0);
        assert_eq!(l.remaining(0), 100);
        assert!(l.exhausted(1));
        assert!(!l.exhausted(2));
        assert_eq!(l.exhausted_count(), 1);
        assert_eq!(l.max_writes(), 110);
        assert!((l.wear_fraction(1) - 1.1).abs() < 1e-12);
        assert_eq!(l.counts(), &[0, 110, 0]);
    }

    #[test]
    fn endurance_budget_matches_model_inverse() {
        let m = EnduranceModel::with_scale(1e6);
        let l = WearLedger::from_endurance(4, &m, 0.01);
        assert_eq!(l.budget(), m.pulse_budget(0.01));
        // A model so fragile the inverse rounds to zero still yields a
        // usable (one-pulse) ledger.
        let fragile = EnduranceModel::with_scale(1e-3);
        assert_eq!(WearLedger::from_endurance(1, &fragile, 0.001).budget(), 1);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_is_rejected() {
        let _ = WearLedger::new(1, 0);
    }
}
