//! Hard-fault models for RRAM crossbars: stuck-at fault maps and an
//! endurance (wear-out) model.
//!
//! The SEI paper's accuracy results assume every cell is programmable; real
//! arrays ship with **stuck-at faults** (SAF) — cells pinned at the
//! low-conductance bound (`SA0`, stuck at `g_min`) or the high-conductance
//! bound (`SA1`, stuck at `g_max`) — and accumulate more of them as
//! write–verify pulses wear the filament out. This crate provides the data
//! model the rest of the stack injects:
//!
//! * [`FaultKind`] / [`FaultModel`] — the two stuck-at classes with
//!   independent per-cell rates;
//! * [`FaultMap`] — a seeded, serializable per-cell map over a physical
//!   array, generated row-major from one `StdRng` stream so a `(dims,
//!   seed)` pair always reproduces the same map (the property the
//!   Monte-Carlo fault campaign's determinism rests on);
//! * [`EnduranceModel`] — a conditional-Weibull wear-out model that turns
//!   the write-pulse count of a freshly programmed cell into a failure
//!   probability, sampled via the order-independent [`mix`]/[`unit01`]
//!   hash so results do not depend on programming order or thread count;
//! * [`WearLedger`] — cumulative per-tile write-wear accounting against a
//!   budget derived from the endurance model, the bookkeeping the
//!   lifecycle scheduler's wear-aware tile rotation runs on.
//!
//! Serialization uses the workspace's in-tree JSON (`sei-telemetry`), under
//! the stable `sei-fault-map/v1` schema, because the workspace deliberately
//! carries no `serde_json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endurance;
pub mod map;
pub mod wear;

pub use endurance::EnduranceModel;
pub use map::{FaultKind, FaultMap, FaultModel};
pub use wear::WearLedger;

/// Splitmix64-style stateless seed derivation: mixes an index into a seed
/// producing an independent, well-distributed stream per `(seed, index)`
/// pair. Used to derive per-layer / per-part / per-cell fault randomness
/// without threading RNG state (so draws are order-independent).
#[must_use]
pub fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[must_use]
pub fn unit01(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Indices of `burdens` sorted ascending by `(burden, index)` — the
/// least-burdened-first assignment order of the fault-aware remapping
/// (`sei-mapping`'s rearrangement argument: give the most work to the
/// least-faulted resource). The serving fleet's tile pool uses it to pick
/// which physical tiles a tenant acquires, so tenants land on the
/// healthiest free tiles first and the choice is deterministic (stable
/// index tie-break, no RNG).
#[must_use]
pub fn burden_order(burdens: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..burdens.len()).collect();
    order.sort_by_key(|&i| (burdens[i], i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
        // Not the identity and not obviously correlated with the input.
        assert_ne!(mix(0, 0), 0);
    }

    #[test]
    fn unit01_in_range() {
        for i in 0..1000u64 {
            let u = unit01(mix(42, i));
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn burden_order_is_ascending_and_stable() {
        assert_eq!(burden_order(&[5, 1, 3, 1, 0]), vec![4, 1, 3, 2, 0]);
        assert_eq!(burden_order(&[]), Vec::<usize>::new());
        // Equal burdens keep index order (deterministic tie-break).
        assert_eq!(burden_order(&[2, 2, 2]), vec![0, 1, 2]);
    }

    #[test]
    fn unit01_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit01(mix(7, i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
