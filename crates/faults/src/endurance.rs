//! Endurance wear-out: write-pulse counts → incremental failure
//! probability.
//!
//! RRAM cell lifetime is conventionally Weibull-distributed in the number
//! of set/reset cycles. A cell that arrives at programming time having
//! already survived `prior_cycles` and then receives `p` write–verify
//! pulses fails during programming with the **conditional** probability
//!
//! `P(fail) = 1 − exp(−(H(prior + p) − H(prior)))`,
//!
//! where `H(t) = (t / scale)^shape` is the Weibull cumulative hazard. This
//! keeps the model consistent under accumulation: programming twice with
//! `p₁` then `p₂` pulses gives the same total failure probability as once
//! with `p₁ + p₂`.

use serde::{Deserialize, Serialize};

/// Weibull endurance model for wear-out faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceModel {
    /// Weibull scale (characteristic life) in write pulses — the pulse
    /// count by which ~63 % of cells have failed.
    pub scale_pulses: f64,
    /// Weibull shape. > 1 models wear-out (hazard grows with age);
    /// typical filamentary-RRAM fits are 1.5–2.5.
    pub shape: f64,
    /// Pulses the cell has already survived before this programming pass
    /// (prior use of the array).
    pub prior_pulses: f64,
    /// Share of wear-out failures that land stuck at `g_min` (the rest
    /// stick at `g_max`). Endurance failures are predominantly stuck-open.
    pub sa0_fraction: f64,
}

impl EnduranceModel {
    /// A model with the given characteristic life (in pulses), wear-out
    /// shape 2, a fresh array, and the stuck-open-dominant 0.8 SA0 share.
    ///
    /// # Panics
    ///
    /// Panics unless `scale_pulses > 0`.
    #[must_use]
    pub fn with_scale(scale_pulses: f64) -> Self {
        assert!(scale_pulses > 0.0, "Weibull scale must be positive");
        EnduranceModel {
            scale_pulses,
            shape: 2.0,
            prior_pulses: 0.0,
            sa0_fraction: 0.8,
        }
    }

    /// The Weibull cumulative hazard `H(t) = (t / scale)^shape`.
    fn hazard(&self, pulses: f64) -> f64 {
        (pulses.max(0.0) / self.scale_pulses).powf(self.shape)
    }

    /// Probability that a cell fails while receiving `pulses` additional
    /// write pulses, conditioned on having survived `prior_pulses`.
    #[must_use]
    pub fn failure_probability(&self, pulses: u64) -> f64 {
        if pulses == 0 {
            return 0.0;
        }
        let h0 = self.hazard(self.prior_pulses);
        let h1 = self.hazard(self.prior_pulses + pulses as f64);
        1.0 - (-(h1 - h0)).exp()
    }

    /// Inverse of [`failure_probability`](Self::failure_probability): the
    /// largest additional pulse budget whose conditional failure
    /// probability stays at or below `p`. This is how the lifecycle
    /// scheduler turns an endurance model into a per-tile **write
    /// budget**: solve `H(prior + x) − H(prior) = −ln(1 − p)` for `x`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1)` — a budget at certainty of
    /// failure is unbounded.
    #[must_use]
    pub fn pulse_budget(&self, p: f64) -> u64 {
        assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
        let target = self.hazard(self.prior_pulses) - (1.0 - p).ln();
        let pulses = self.scale_pulses * target.powf(1.0 / self.shape) - self.prior_pulses;
        pulses.max(0.0).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;

    #[test]
    fn zero_pulses_never_fail() {
        let m = EnduranceModel::with_scale(1e6);
        assert_eq!(m.failure_probability(0), 0.0);
    }

    #[test]
    fn probability_monotone_in_pulses() {
        let m = EnduranceModel::with_scale(1e4);
        let mut last = 0.0;
        for pulses in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            let p = m.failure_probability(pulses);
            assert!(p > last, "p({pulses}) = {p} not > {last}");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn characteristic_life_fails_63_percent() {
        let m = EnduranceModel::with_scale(1000.0);
        let p = m.failure_probability(1000);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn conditional_hazard_accumulates() {
        // Surviving p1 then failing within p2 must equal one p1+p2 pass.
        let fresh = EnduranceModel::with_scale(5000.0);
        let aged = EnduranceModel {
            prior_pulses: 300.0,
            ..fresh
        };
        let p_two_stage = fresh.failure_probability(300)
            + (1.0 - fresh.failure_probability(300)) * aged.failure_probability(200);
        let p_one_stage = fresh.failure_probability(500);
        assert!((p_two_stage - p_one_stage).abs() < 1e-12);
    }

    #[test]
    fn wear_out_raises_hazard_for_aged_cells() {
        let fresh = EnduranceModel::with_scale(1e4);
        let aged = EnduranceModel {
            prior_pulses: 9e3,
            ..fresh
        };
        // shape > 1: the same pulse budget is riskier late in life.
        assert!(aged.failure_probability(100) > fresh.failure_probability(100));
    }

    #[test]
    fn pulse_budget_inverts_failure_probability() {
        let m = EnduranceModel::with_scale(1e6);
        for p in [0.001, 0.01, 0.1, 0.5] {
            let budget = m.pulse_budget(p);
            assert!(budget > 0, "budget at p={p}");
            // The budget is safe (≤ p) and tight (one more pulse exceeds p).
            assert!(m.failure_probability(budget) <= p + 1e-12);
            assert!(m.failure_probability(budget + 1) > p);
        }
        // Aged arrays get smaller residual budgets.
        let aged = EnduranceModel {
            prior_pulses: 5e5,
            ..m
        };
        assert!(aged.pulse_budget(0.01) < m.pulse_budget(0.01));
        assert_eq!(m.pulse_budget(0.0), 0);
    }

    #[test]
    fn sa0_fraction_maps_to_kind_split() {
        let m = EnduranceModel::with_scale(1e5);
        // The kind split is consumed by callers as: u < sa0_fraction → SA0.
        let kind = |u: f64| {
            if u < m.sa0_fraction {
                FaultKind::StuckAtZero
            } else {
                FaultKind::StuckAtOne
            }
        };
        assert_eq!(kind(0.1), FaultKind::StuckAtZero);
        assert_eq!(kind(0.9), FaultKind::StuckAtOne);
    }
}
