//! Property tests for the numeric core: matrix identities, conv/im2col
//! consistency, loss gradients and pooling invariants.

use proptest::prelude::*;
use sei_nn::loss::{softmax, softmax_cross_entropy};
use sei_nn::{Conv2d, Matrix, MaxPool2d, Tensor3};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `vecmat(x) == transposed().matvec(x)` for all matrices.
    #[test]
    fn vecmat_is_transposed_matvec(m in matrix(4, 6), x in proptest::collection::vec(-5.0f32..5.0, 4)) {
        let a = m.vecmat(&x);
        let b = m.transposed().matvec(&x);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-3);
        }
    }

    /// Matrix multiplication distributes over the vector product:
    /// `(A·B)ᵀ-style row product == A applied after B`.
    #[test]
    fn matmul_composes_with_matvec(
        a in matrix(3, 4),
        b in matrix(4, 5),
        x in proptest::collection::vec(-2.0f32..2.0, 5),
    ) {
        let direct = a.matmul(&b).matvec(&x);
        let staged = a.matvec(&b.matvec(&x));
        for (p, q) in direct.iter().zip(&staged) {
            prop_assert!((p - q).abs() < 1e-2, "{p} vs {q}");
        }
    }

    /// Column means scale linearly with the matrix.
    #[test]
    fn column_means_linear(m in matrix(5, 3), k in -3.0f32..3.0) {
        let base = m.column_means();
        let mut scaled = m.clone();
        for v in scaled.as_mut_slice() {
            *v *= k;
        }
        for (b, s) in base.iter().zip(scaled.column_means()) {
            prop_assert!((b * k - s).abs() < 1e-3);
        }
    }

    /// Conv forward equals the weight-matrix product of each im2col patch.
    #[test]
    fn conv_equals_im2col_product(
        weights in proptest::collection::vec(-1.0f32..1.0, 2 * 2 * 2 * 2),
        input in proptest::collection::vec(-1.0f32..1.0, 2 * 4 * 4),
    ) {
        let conv = Conv2d::from_parts(2, 2, 2, weights, vec![0.0; 2]);
        let x = Tensor3::from_vec(2, 4, 4, input);
        let (y, cols) = conv.forward_with_cols(&x);
        let wm = conv.weight_matrix();
        for pos in 0..9 {
            let prods = wm.vecmat(cols.row(pos));
            for (o, &p) in prods.iter().enumerate() {
                prop_assert!((y.get(o, pos / 3, pos % 3) - p).abs() < 1e-4);
            }
        }
    }

    /// Softmax output is a probability vector regardless of logit scale.
    #[test]
    fn softmax_is_distribution(logits in proptest::collection::vec(-50.0f32..50.0, 10)) {
        let p = softmax(&Tensor3::from_flat(logits));
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Cross-entropy gradient components sum to zero (p − one-hot).
    #[test]
    fn ce_gradient_sums_to_zero(
        logits in proptest::collection::vec(-5.0f32..5.0, 6),
        label in 0usize..6,
    ) {
        let (_, grad) = softmax_cross_entropy(&Tensor3::from_flat(logits), label);
        let s: f32 = grad.as_slice().iter().sum();
        prop_assert!(s.abs() < 1e-4);
    }

    /// Max pooling never invents values: every output element is present
    /// in the input, and pooling is monotone.
    #[test]
    fn pooling_selects_existing_values(data in proptest::collection::vec(-9.0f32..9.0, 36)) {
        let t = Tensor3::from_vec(1, 6, 6, data.clone());
        let (pooled, _) = MaxPool2d::new(2).forward(&t);
        for &v in pooled.as_slice() {
            prop_assert!(data.contains(&v));
        }
        // Monotonicity: adding a constant shifts the pool by the constant.
        let mut shifted = t.clone();
        shifted.map_inplace(|v| v + 1.5);
        let (pooled2, _) = MaxPool2d::new(2).forward(&shifted);
        for (a, b) in pooled.as_slice().iter().zip(pooled2.as_slice()) {
            prop_assert!((a + 1.5 - b).abs() < 1e-4);
        }
    }

    /// Weight re-scaling by a positive constant never changes the argmax
    /// of a linear layer's output — the paper's "weight scaling without
    /// numeral precision loss does not change the classification result".
    #[test]
    fn positive_scaling_preserves_argmax(
        weights in proptest::collection::vec(-1.0f32..1.0, 8 * 4),
        input in proptest::collection::vec(0.0f32..1.0, 8),
        scale in 0.01f32..100.0,
    ) {
        use sei_nn::Linear;
        let l1 = Linear::from_parts(8, 4, weights.clone(), vec![0.0; 4]);
        let scaled: Vec<f32> = weights.iter().map(|w| w / scale).collect();
        let l2 = Linear::from_parts(8, 4, scaled, vec![0.0; 4]);
        let x = Tensor3::from_flat(input);
        prop_assert_eq!(l1.forward(&x).argmax(), l2.forward(&x).argmax());
    }
}
