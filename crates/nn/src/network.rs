//! Sequential network container.

use crate::layers::{Layer, LayerCache};
use crate::tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// A sequential stack of [`Layer`]s — the paper's CNNs are all of the shape
/// `Conv → ReLU → Pool → Conv → ReLU → Pool → Flatten → FC`.
///
/// # Example
///
/// ```
/// use sei_nn::{Network, Layer, Conv2d, MaxPool2d, Linear, Tensor3};
/// let net = Network::new(vec![
///     Layer::Conv(Conv2d::zeros(1, 4, 3)),
///     Layer::Relu,
///     Layer::Pool(MaxPool2d::new(2)),
///     Layer::Flatten,
///     Layer::Linear(Linear::zeros(4 * 13 * 13, 10)),
/// ]);
/// let logits = net.forward(&Tensor3::zeros(1, 28, 28));
/// assert_eq!(logits.shape(), (10, 1, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from a layer list.
    pub fn new(layers: Vec<Layer>) -> Self {
        Network { layers }
    }

    /// Borrows the layer list.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutably borrows the layer list (used by the quantizer to re-scale
    /// weights in place).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Indices of the weighted (conv / FC) layers, in order. These are the
    /// "layers" in the sense of the paper's Algorithm 1 (its greedy loop
    /// iterates over weighted layers).
    pub fn weighted_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_weighted())
            .map(|(i, _)| i)
            .collect()
    }

    /// Inference forward pass through all layers.
    pub fn forward(&self, x: &Tensor3) -> Tensor3 {
        let mut cur = x.clone();
        for (i, l) in self.layers.iter().enumerate() {
            let _trace =
                sei_telemetry::trace::scope("layer", || format!("nn.l{i:02}.{}", l.kind_name()));
            cur = l.forward(&cur);
        }
        cur
    }

    /// Forward pass that returns the input of every layer plus the final
    /// output: `activations[i]` is the input to layer `i`, and
    /// `activations[len()]` is the network output.
    pub fn forward_collect(&self, x: &Tensor3) -> Vec<Tensor3> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for l in &self.layers {
            let next = l.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Forward pass for training: returns per-layer inputs, per-layer caches
    /// and the output.
    pub fn forward_train(&self, x: &Tensor3) -> (Vec<Tensor3>, Vec<LayerCache>, Tensor3) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut caches = Vec::with_capacity(self.layers.len());
        let out = self.forward_train_into(x, &mut inputs, &mut caches);
        (inputs, caches, out)
    }

    /// [`forward_train`](Self::forward_train) into caller-owned buffers:
    /// the training loop passes the same `inputs`/`caches` every image, so
    /// conv im2col matrices are reused instead of reallocated.
    pub fn forward_train_into(
        &self,
        x: &Tensor3,
        inputs: &mut Vec<Tensor3>,
        caches: &mut Vec<LayerCache>,
    ) -> Tensor3 {
        inputs.clear();
        caches.resize_with(self.layers.len(), || LayerCache::None);
        let mut cur = x.clone();
        for (l, cache) in self.layers.iter().zip(caches.iter_mut()) {
            inputs.push(cur.clone());
            cur = l.forward_train_into(&cur, cache);
        }
        cur
    }

    /// Classifies an input by logit argmax.
    pub fn classify(&self, x: &Tensor3) -> usize {
        self.forward(x).argmax()
    }

    /// Output shape for a given input shape, chaining through all layers.
    ///
    /// # Panics
    ///
    /// Panics if any layer is incompatible with its input shape.
    pub fn output_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        self.layers.iter().fold(input, |s, l| l.output_shape(s))
    }

    /// Total multiply–accumulate operation count (×2 for the paper's
    /// "operations" convention: one multiply + one add) for a single input of
    /// the given shape.
    ///
    /// For Network 1 of Table 2 this evaluates to ≈ 6 M operations
    /// ("0.006 GOPs").
    pub fn operation_count(&self, input: (usize, usize, usize)) -> u64 {
        let mut shape = input;
        let mut ops: u64 = 0;
        for l in &self.layers {
            let out = l.output_shape(shape);
            match l {
                Layer::Conv(c) => {
                    let macs = (out.0 * out.1 * out.2) as u64 * c.matrix_rows() as u64;
                    ops += 2 * macs;
                }
                Layer::Linear(lin) => {
                    ops += 2 * (lin.in_features() * lin.out_features()) as u64;
                }
                _ => {}
            }
            shape = out;
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear, MaxPool2d};

    fn tiny_net() -> Network {
        Network::new(vec![
            Layer::Conv(Conv2d::zeros(1, 2, 3)),
            Layer::Relu,
            Layer::Pool(MaxPool2d::new(2)),
            Layer::Flatten,
            Layer::Linear(Linear::zeros(2 * 3 * 3, 4)),
        ])
    }

    #[test]
    fn forward_shape_chain() {
        let net = tiny_net();
        let y = net.forward(&Tensor3::zeros(1, 8, 8));
        assert_eq!(y.shape(), (4, 1, 1));
        assert_eq!(net.output_shape((1, 8, 8)), (4, 1, 1));
    }

    #[test]
    fn forward_collect_lengths() {
        let net = tiny_net();
        let acts = net.forward_collect(&Tensor3::zeros(1, 8, 8));
        assert_eq!(acts.len(), net.len() + 1);
        assert_eq!(acts[0].shape(), (1, 8, 8));
        assert_eq!(acts[net.len()].shape(), (4, 1, 1));
    }

    #[test]
    fn weighted_layer_indices_finds_conv_and_fc() {
        let net = tiny_net();
        assert_eq!(net.weighted_layer_indices(), vec![0, 4]);
    }

    #[test]
    fn operation_count_network1_matches_paper_complexity() {
        let net = crate::paper::network1(0);
        let ops = net.operation_count((1, 28, 28));
        // Paper Table 2 reports 0.006 GOPs for Network 1; our MAC-based
        // count lands in the same order of magnitude (the paper's exact
        // accounting convention is not specified).
        let gops = ops as f64 / 1e9;
        assert!(
            (0.002..0.010).contains(&gops),
            "Network 1 complexity {gops} GOPs should be ~0.006"
        );
    }
}
