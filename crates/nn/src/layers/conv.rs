//! 2-D convolution layer (stride 1, valid padding), implemented via im2col.
//!
//! The paper treats a convolution layer with `K` kernels of size `S×S×I` as a
//! matrix–vector multiplication with an `(S·S·I) × K` weight matrix (§2.2:
//! "for the Conv layer containing 64 kernels in 3×3×3 size, we can use 27×64
//! RRAM crossbar"). [`Conv2d::weight_matrix`] exposes exactly that
//! crossbar-orientation matrix.

use crate::layers::ParamGrad;
use crate::tensor::{Matrix, Tensor3};
use serde::{Deserialize, Serialize};

/// A 2-D convolution with square kernels, stride 1 and no padding.
///
/// Weight layout: `weights[((o * in_ch + i) * k + ky) * k + kx]`.
///
/// # Example
///
/// ```
/// use sei_nn::{Conv2d, Tensor3};
/// // 1 input channel, 1 kernel of size 2: a moving sum.
/// let mut c = Conv2d::zeros(1, 1, 2);
/// c.weights_mut().fill(1.0);
/// let x = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let y = c.forward(&x);
/// assert_eq!(y.as_slice(), &[10.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with all weights and biases zero.
    pub fn zeros(in_ch: usize, out_ch: usize, k: usize) -> Self {
        Conv2d {
            in_ch,
            out_ch,
            k,
            weights: vec![0.0; out_ch * in_ch * k * k],
            bias: vec![0.0; out_ch],
        }
    }

    /// Creates a convolution from explicit parameter buffers.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match the declared shape.
    pub fn from_parts(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        weights: Vec<f32>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(weights.len(), out_ch * in_ch * k * k, "weight buffer size");
        assert_eq!(bias.len(), out_ch, "bias buffer size");
        Conv2d {
            in_ch,
            out_ch,
            k,
            weights,
            bias,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Number of kernels (output channels).
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Kernel side length `S`.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Borrows the weight buffer.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutably borrows the weight buffer.
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Borrows the bias buffer.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutably borrows the bias buffer.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Number of rows of the crossbar-orientation weight matrix: `S·S·I`.
    pub fn matrix_rows(&self) -> usize {
        self.in_ch * self.k * self.k
    }

    /// The paper's `(S·S·I) × K` weight matrix: one column per kernel,
    /// one row per input-patch element.
    ///
    /// Row index `r` corresponds to patch element `(i, ky, kx)` with
    /// `r = (i * k + ky) * k + kx`, matching [`Conv2d::im2col`] column order.
    pub fn weight_matrix(&self) -> Matrix {
        let rows = self.matrix_rows();
        let mut m = Matrix::zeros(rows, self.out_ch);
        for o in 0..self.out_ch {
            for r in 0..rows {
                m.set(r, o, self.weights[o * rows + r]);
            }
        }
        m
    }

    /// Replaces the weights from a crossbar-orientation matrix (inverse of
    /// [`Conv2d::weight_matrix`]).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape is not `(S·S·I) × K`.
    pub fn set_weight_matrix(&mut self, m: &Matrix) {
        let rows = self.matrix_rows();
        assert_eq!(m.rows(), rows, "weight matrix row count");
        assert_eq!(m.cols(), self.out_ch, "weight matrix column count");
        for o in 0..self.out_ch {
            for r in 0..rows {
                self.weights[o * rows + r] = m.get(r, o);
            }
        }
    }

    fn out_hw(&self, x: &Tensor3) -> (usize, usize) {
        assert_eq!(x.channels(), self.in_ch, "conv input channels");
        assert!(
            x.height() >= self.k && x.width() >= self.k,
            "input smaller than kernel"
        );
        (x.height() - self.k + 1, x.width() - self.k + 1)
    }

    /// Extracts sliding patches: one row per output position `(y, x)` in
    /// row-major order, one column per patch element `(i, ky, kx)`.
    pub fn im2col(&self, x: &Tensor3) -> Matrix {
        let mut m = Matrix::zeros(0, 0);
        self.im2col_into(x, &mut m);
        m
    }

    /// [`im2col`](Self::im2col) into a caller-owned matrix, reusing its
    /// buffer capacity — training and eval loops call this once per image,
    /// so reuse removes the largest per-image allocation.
    pub fn im2col_into(&self, x: &Tensor3, m: &mut Matrix) {
        let (oh, ow) = self.out_hw(x);
        let cols = self.matrix_rows();
        m.resize(oh * ow, cols);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = m.row_mut(oy * ow + ox);
                let mut c = 0;
                for i in 0..self.in_ch {
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            row[c] = x.get(i, oy + ky, ox + kx);
                            c += 1;
                        }
                    }
                }
            }
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible.
    pub fn forward(&self, x: &Tensor3) -> Tensor3 {
        self.forward_with_cols(x).0
    }

    /// Forward pass that also returns the im2col patch matrix (reused by the
    /// backward pass).
    pub fn forward_with_cols(&self, x: &Tensor3) -> (Tensor3, Matrix) {
        let mut cols = Matrix::zeros(0, 0);
        let y = self.forward_with_cols_into(x, &mut cols);
        (y, cols)
    }

    /// [`forward_with_cols`](Self::forward_with_cols) with a caller-owned
    /// im2col buffer.
    pub fn forward_with_cols_into(&self, x: &Tensor3, cols: &mut Matrix) -> Tensor3 {
        let (oh, ow) = self.out_hw(x);
        self.im2col_into(x, cols);
        let rows = self.matrix_rows();
        let mut y = Tensor3::zeros(self.out_ch, oh, ow);
        for pos in 0..oh * ow {
            let patch = cols.row(pos);
            for o in 0..self.out_ch {
                let w = &self.weights[o * rows..(o + 1) * rows];
                let mut acc = self.bias[o];
                for (a, b) in w.iter().zip(patch) {
                    acc += a * b;
                }
                y.set(o, pos / ow, pos % ow, acc);
            }
        }
        y
    }

    /// Backward pass given the input `x`, the cached im2col matrix and the
    /// upstream gradient. Returns `(grad_input, param_grad)`.
    pub fn backward(&self, x: &Tensor3, cols: &Matrix, grad_y: &Tensor3) -> (Tensor3, ParamGrad) {
        let (oh, ow) = self.out_hw(x);
        assert_eq!(grad_y.shape(), (self.out_ch, oh, ow), "grad_y shape");
        let rows = self.matrix_rows();

        let mut gw = vec![0.0; self.weights.len()];
        let mut gb = vec![0.0; self.out_ch];
        // grad for im2col matrix; scattered back into the input afterwards.
        let mut gcols = Matrix::zeros(oh * ow, rows);

        for pos in 0..oh * ow {
            let patch = cols.row(pos);
            let grow = gcols.row_mut(pos);
            for o in 0..self.out_ch {
                let g = grad_y.get(o, pos / ow, pos % ow);
                if g == 0.0 {
                    continue;
                }
                gb[o] += g;
                let wslice = &self.weights[o * rows..(o + 1) * rows];
                let gwslice = &mut gw[o * rows..(o + 1) * rows];
                for c in 0..rows {
                    gwslice[c] += g * patch[c];
                    grow[c] += g * wslice[c];
                }
            }
        }

        // col2im scatter-add.
        let mut gx = Tensor3::zeros(self.in_ch, x.height(), x.width());
        for oy in 0..oh {
            for ox in 0..ow {
                let grow = gcols.row(oy * ow + ox);
                let mut c = 0;
                for i in 0..self.in_ch {
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            let cur = gx.get(i, oy + ky, ox + kx);
                            gx.set(i, oy + ky, ox + kx, cur + grow[c]);
                            c += 1;
                        }
                    }
                }
            }
        }

        (
            gx,
            ParamGrad {
                weights: gw,
                bias: gb,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_conv() -> (Conv2d, Tensor3) {
        let mut c = Conv2d::zeros(2, 3, 2);
        // deterministic pseudo-random-ish weights
        for (i, w) in c.weights_mut().iter_mut().enumerate() {
            *w = ((i as f32) * 0.37).sin() * 0.5;
        }
        for (i, b) in c.bias_mut().iter_mut().enumerate() {
            *b = 0.1 * i as f32;
        }
        let mut x = Tensor3::zeros(2, 4, 4);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32) * 0.11).cos();
        }
        (c, x)
    }

    fn loss(y: &Tensor3) -> f32 {
        // simple quadratic loss: 0.5 * sum(y^2)
        y.as_slice().iter().map(|v| 0.5 * v * v).sum()
    }

    #[test]
    fn forward_known_single_pixel() {
        let mut c = Conv2d::zeros(1, 1, 3);
        c.weights_mut()
            .copy_from_slice(&[0., 0., 0., 0., 1., 0., 0., 0., 0.]);
        c.bias_mut()[0] = 2.0;
        let mut x = Tensor3::zeros(1, 3, 3);
        x.set(0, 1, 1, 7.0);
        let y = c.forward(&x);
        assert_eq!(y.shape(), (1, 1, 1));
        assert_eq!(y.get(0, 0, 0), 9.0);
    }

    #[test]
    fn weight_matrix_roundtrip() {
        let (c, _) = finite_diff_conv();
        let m = c.weight_matrix();
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 3);
        let mut c2 = Conv2d::zeros(2, 3, 2);
        c2.set_weight_matrix(&m);
        assert_eq!(c2.weights(), c.weights());
    }

    #[test]
    fn forward_matches_weight_matrix_times_patch() {
        let (c, x) = finite_diff_conv();
        let (y, cols) = c.forward_with_cols(&x);
        let wm = c.weight_matrix();
        // pick output position (1, 2): row index 1*3+2 = 5
        let patch = cols.row(5);
        let prods = wm.vecmat(patch);
        for (o, &p) in prods.iter().enumerate() {
            let expect = p + c.bias()[o];
            assert!((y.get(o, 1, 2) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_weights_match_finite_difference() {
        let (mut c, x) = finite_diff_conv();
        let (y, cols) = c.forward_with_cols(&x);
        let gy = y.clone(); // dL/dy = y for quadratic loss
        let (_, pg) = c.backward(&x, &cols, &gy);
        let eps = 1e-3;
        for idx in [0usize, 5, 11, 23] {
            let orig = c.weights()[idx];
            c.weights_mut()[idx] = orig + eps;
            let lp = loss(&c.forward(&x));
            c.weights_mut()[idx] = orig - eps;
            let lm = loss(&c.forward(&x));
            c.weights_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (pg.weights[idx] - fd).abs() < 1e-2,
                "weight {idx}: analytic {} vs fd {fd}",
                pg.weights[idx]
            );
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let (c, mut x) = finite_diff_conv();
        let (y, cols) = c.forward_with_cols(&x);
        let gy = y.clone();
        let (gx, _) = c.backward(&x, &cols, &gy);
        let eps = 1e-3;
        for idx in [0usize, 7, 15, 31] {
            let orig = x.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&c.forward(&x));
            x.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&c.forward(&x));
            x.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (gx.as_slice()[idx] - fd).abs() < 1e-2,
                "input {idx}: analytic {} vs fd {fd}",
                gx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn backward_bias_is_sum_of_grad() {
        let (c, x) = finite_diff_conv();
        let (y, cols) = c.forward_with_cols(&x);
        let mut gy = y.clone();
        gy.map_inplace(|_| 1.0);
        let (_, pg) = c.backward(&x, &cols, &gy);
        let positions = (y.height() * y.width()) as f32;
        for o in 0..3 {
            assert!((pg.bias[o] - positions).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "conv input channels")]
    fn forward_rejects_wrong_channels() {
        let c = Conv2d::zeros(2, 1, 2);
        let x = Tensor3::zeros(1, 4, 4);
        let _ = c.forward(&x);
    }
}
