//! Layer zoo: convolution, ReLU, max-pooling, flatten and fully-connected
//! layers, each with a forward pass and a backward pass for training.
//!
//! Layers are collected in the [`Layer`] enum rather than a trait object so
//! that the quantizer and the crossbar mapper can pattern-match on the layer
//! kind and reach its weights directly (the paper's Algorithm 1 re-scales
//! weights per layer, and the mapper turns each weighted layer into its
//! crossbar-orientation weight matrix).

mod conv;
mod linear;
mod pool;

pub use conv::Conv2d;
pub use linear::Linear;
pub use pool::MaxPool2d;

use crate::tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// Per-layer data captured by the training forward pass and consumed by the
/// backward pass.
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// im2col patch matrix for a convolution (one row per output position).
    Conv(crate::tensor::Matrix),
    /// Flat input-buffer index of the maximum of each pooling window.
    Pool(Vec<usize>),
    /// The layer needs no cache beyond its input.
    None,
}

/// Gradient of a layer's parameters, laid out exactly like the parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGrad {
    /// Gradient w.r.t. the weights (same layout as the layer's weight buffer).
    pub weights: Vec<f32>,
    /// Gradient w.r.t. the bias.
    pub bias: Vec<f32>,
}

/// One layer of a sequential [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution (stride 1, no padding — the paper's configuration).
    Conv(Conv2d),
    /// Rectified linear unit, `max(x, 0)`, the paper's non-linear neuron.
    Relu,
    /// Non-overlapping spatial max pooling.
    Pool(MaxPool2d),
    /// Reshape `(c, h, w)` to `(c·h·w, 1, 1)` between conv and FC stages.
    Flatten,
    /// Fully-connected layer.
    Linear(Linear),
}

impl Layer {
    /// Runs the layer forward (inference path).
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    pub fn forward(&self, x: &Tensor3) -> Tensor3 {
        match self {
            Layer::Conv(c) => c.forward(x),
            Layer::Relu => {
                let mut y = x.clone();
                y.map_inplace(|v| v.max(0.0));
                y
            }
            Layer::Pool(p) => p.forward(x).0,
            Layer::Flatten => x.clone().into_flat(),
            Layer::Linear(l) => l.forward(x),
        }
    }

    /// Runs the layer forward, additionally returning the cache needed by
    /// [`Layer::backward`].
    pub fn forward_train(&self, x: &Tensor3) -> (Tensor3, LayerCache) {
        let mut cache = LayerCache::None;
        let y = self.forward_train_into(x, &mut cache);
        (y, cache)
    }

    /// [`forward_train`](Self::forward_train) writing the cache in place —
    /// a conv layer reuses the buffer of an existing
    /// [`LayerCache::Conv`] im2col matrix instead of allocating a fresh
    /// one per image (the training loop holds the caches across
    /// iterations).
    pub fn forward_train_into(&self, x: &Tensor3, cache: &mut LayerCache) -> Tensor3 {
        match self {
            Layer::Conv(c) => {
                if let LayerCache::Conv(cols) = cache {
                    c.forward_with_cols_into(x, cols)
                } else {
                    let mut cols = crate::tensor::Matrix::zeros(0, 0);
                    let y = c.forward_with_cols_into(x, &mut cols);
                    *cache = LayerCache::Conv(cols);
                    y
                }
            }
            Layer::Pool(p) => {
                let (y, argmax) = p.forward(x);
                *cache = LayerCache::Pool(argmax);
                y
            }
            other => {
                *cache = LayerCache::None;
                other.forward(x)
            }
        }
    }

    /// Back-propagates `grad_y` through the layer.
    ///
    /// `x` must be the same input that produced `cache` in
    /// [`Layer::forward_train`]. Returns the gradient w.r.t. the input and,
    /// for weighted layers, the parameter gradient.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not match the layer kind.
    pub fn backward(
        &self,
        x: &Tensor3,
        cache: &LayerCache,
        grad_y: &Tensor3,
    ) -> (Tensor3, Option<ParamGrad>) {
        match (self, cache) {
            (Layer::Conv(c), LayerCache::Conv(cols)) => {
                let (gx, pg) = c.backward(x, cols, grad_y);
                (gx, Some(pg))
            }
            (Layer::Relu, _) => {
                let mut gx = grad_y.clone();
                for (g, &v) in gx.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
                (gx, None)
            }
            (Layer::Pool(p), LayerCache::Pool(argmax)) => (p.backward(x, argmax, grad_y), None),
            (Layer::Flatten, _) => {
                let (c, h, w) = x.shape();
                (Tensor3::from_vec(c, h, w, grad_y.as_slice().to_vec()), None)
            }
            (Layer::Linear(l), _) => {
                let (gx, pg) = l.backward(x, grad_y);
                (gx, Some(pg))
            }
            (layer, cache) => panic!("cache kind {cache:?} does not match layer {layer:?}"),
        }
    }

    /// Output shape for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    pub fn output_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        let (c, h, w) = input;
        match self {
            Layer::Conv(cv) => {
                assert_eq!(c, cv.in_channels(), "conv input channel mismatch");
                (cv.out_channels(), h - cv.kernel() + 1, w - cv.kernel() + 1)
            }
            Layer::Relu => input,
            Layer::Pool(p) => (c, h / p.size(), w / p.size()),
            Layer::Flatten => (c * h * w, 1, 1),
            Layer::Linear(l) => {
                assert_eq!(c * h * w, l.in_features(), "linear input size mismatch");
                (l.out_features(), 1, 1)
            }
        }
    }

    /// Whether this layer carries trainable weights (conv or linear).
    pub fn is_weighted(&self) -> bool {
        matches!(self, Layer::Conv(_) | Layer::Linear(_))
    }

    /// Short human-readable kind name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv(_) => "conv",
            Layer::Relu => "relu",
            Layer::Pool(_) => "pool",
            Layer::Flatten => "flatten",
            Layer::Linear(_) => "fc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let x = Tensor3::from_flat(vec![-1.0, 0.0, 2.0]);
        let y = Layer::Relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor3::from_flat(vec![-1.0, 0.0, 2.0]);
        let gy = Tensor3::from_flat(vec![1.0, 1.0, 1.0]);
        let (gx, pg) = Layer::Relu.backward(&x, &LayerCache::None, &gy);
        assert_eq!(gx.as_slice(), &[0.0, 0.0, 1.0]);
        assert!(pg.is_none());
    }

    #[test]
    fn flatten_roundtrip_shapes() {
        let x = Tensor3::zeros(2, 3, 4);
        let y = Layer::Flatten.forward(&x);
        assert_eq!(y.shape(), (24, 1, 1));
        let gy = Tensor3::zeros(24, 1, 1);
        let (gx, _) = Layer::Flatten.backward(&x, &LayerCache::None, &gy);
        assert_eq!(gx.shape(), (2, 3, 4));
    }

    #[test]
    fn output_shape_chain_network1_style() {
        // 28x28 -> conv 5x5x12 -> 24x24x12 -> pool2 -> 12x12x12
        let conv = Layer::Conv(Conv2d::zeros(1, 12, 5));
        let s1 = conv.output_shape((1, 28, 28));
        assert_eq!(s1, (12, 24, 24));
        let pool = Layer::Pool(MaxPool2d::new(2));
        assert_eq!(pool.output_shape(s1), (12, 12, 12));
    }

    #[test]
    fn pool_output_shape_floors() {
        // 11x11 pooled by 2 -> 5x5, as in Networks 2 and 3.
        let pool = Layer::Pool(MaxPool2d::new(2));
        assert_eq!(pool.output_shape((8, 11, 11)), (8, 5, 5));
    }
}
