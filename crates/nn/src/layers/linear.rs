//! Fully-connected (FC) layer — Equ. (2) of the paper:
//! `output_i = f(Σ_j w_ij · input_j + b_i)` (the non-linearity `f` is a
//! separate [`crate::Layer::Relu`]).

use crate::layers::ParamGrad;
use crate::tensor::{Matrix, Tensor3};
use serde::{Deserialize, Serialize};

/// A fully-connected layer with weight layout `weights[o * in + i]`.
///
/// # Example
///
/// ```
/// use sei_nn::{Linear, Tensor3};
/// let mut l = Linear::zeros(2, 1);
/// l.weights_mut().copy_from_slice(&[3.0, -1.0]);
/// l.bias_mut()[0] = 0.5;
/// let y = l.forward(&Tensor3::from_flat(vec![1.0, 2.0]));
/// assert_eq!(y.as_slice(), &[1.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a linear layer with all parameters zero.
    pub fn zeros(in_features: usize, out_features: usize) -> Self {
        Linear {
            in_features,
            out_features,
            weights: vec![0.0; in_features * out_features],
            bias: vec![0.0; out_features],
        }
    }

    /// Creates a linear layer from explicit parameter buffers.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match the declared shape.
    pub fn from_parts(
        in_features: usize,
        out_features: usize,
        weights: Vec<f32>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(weights.len(), in_features * out_features, "weight buffer");
        assert_eq!(bias.len(), out_features, "bias buffer");
        Linear {
            in_features,
            out_features,
            weights,
            bias,
        }
    }

    /// Input dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Borrows the weight buffer (`weights[o * in + i]`).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutably borrows the weight buffer.
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Borrows the bias buffer.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutably borrows the bias buffer.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Crossbar-orientation weight matrix: `in_features` rows ×
    /// `out_features` columns (one column per output neuron), matching the
    /// paper's `1024×10` FC matrix of Network 1.
    pub fn weight_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.in_features, self.out_features);
        for o in 0..self.out_features {
            for i in 0..self.in_features {
                m.set(i, o, self.weights[o * self.in_features + i]);
            }
        }
        m
    }

    /// Replaces the weights from a crossbar-orientation matrix (inverse of
    /// [`Linear::weight_matrix`]).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape is not `in_features × out_features`.
    pub fn set_weight_matrix(&mut self, m: &Matrix) {
        assert_eq!(m.rows(), self.in_features, "weight matrix rows");
        assert_eq!(m.cols(), self.out_features, "weight matrix cols");
        for o in 0..self.out_features {
            for i in 0..self.in_features {
                self.weights[o * self.in_features + i] = m.get(i, o);
            }
        }
    }

    /// Forward pass. The input may have any 3-D shape whose total length is
    /// `in_features` (it is read flat).
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match.
    pub fn forward(&self, x: &Tensor3) -> Tensor3 {
        assert_eq!(x.len(), self.in_features, "linear input length");
        let xs = x.as_slice();
        let mut y = Vec::with_capacity(self.out_features);
        for o in 0..self.out_features {
            let w = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = self.bias[o];
            for (a, b) in w.iter().zip(xs) {
                acc += a * b;
            }
            y.push(acc);
        }
        Tensor3::from_flat(y)
    }

    /// Backward pass; returns `(grad_input, param_grad)`.
    pub fn backward(&self, x: &Tensor3, grad_y: &Tensor3) -> (Tensor3, ParamGrad) {
        assert_eq!(grad_y.len(), self.out_features, "grad_y length");
        let xs = x.as_slice();
        let gys = grad_y.as_slice();
        let mut gw = vec![0.0; self.weights.len()];
        let mut gx = vec![0.0; self.in_features];
        for o in 0..self.out_features {
            let g = gys[o];
            if g == 0.0 {
                continue;
            }
            let w = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            let gwr = &mut gw[o * self.in_features..(o + 1) * self.in_features];
            for i in 0..self.in_features {
                gwr[i] += g * xs[i];
                gx[i] += g * w[i];
            }
        }
        let (c, h, w) = x.shape();
        (
            Tensor3::from_vec(c, h, w, gx),
            ParamGrad {
                weights: gw,
                bias: gys.to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known() {
        let l = Linear::from_parts(3, 2, vec![1.0, 0.0, -1.0, 2.0, 2.0, 2.0], vec![0.0, 1.0]);
        let y = l.forward(&Tensor3::from_flat(vec![1.0, 2.0, 3.0]));
        assert_eq!(y.as_slice(), &[-2.0, 13.0]);
    }

    #[test]
    fn weight_matrix_roundtrip() {
        let l = Linear::from_parts(2, 3, vec![1., 2., 3., 4., 5., 6.], vec![0.0; 3]);
        let m = l.weight_matrix();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 2), 5.0);
        let mut l2 = Linear::zeros(2, 3);
        l2.set_weight_matrix(&m);
        assert_eq!(l2.weights(), l.weights());
    }

    #[test]
    fn forward_equals_vecmat_plus_bias() {
        let l = Linear::from_parts(3, 2, vec![0.5, -0.5, 1.0, 2.0, 0.0, -1.0], vec![0.1, 0.2]);
        let x = [1.0, 2.0, -1.0];
        let y = l.forward(&Tensor3::from_flat(x.to_vec()));
        let via_matrix = l.weight_matrix().vecmat(&x);
        for (o, &v) in via_matrix.iter().enumerate() {
            assert!((y.as_slice()[o] - (v + l.bias()[o])).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut l = Linear::from_parts(3, 2, vec![0.3, -0.2, 0.7, -0.4, 0.9, 0.1], vec![0.0, 0.5]);
        let x = Tensor3::from_flat(vec![0.5, -1.0, 2.0]);
        let loss = |l: &Linear, x: &Tensor3| -> f32 {
            l.forward(x).as_slice().iter().map(|v| 0.5 * v * v).sum()
        };
        let y = l.forward(&x);
        let (gx, pg) = l.backward(&x, &y);
        let eps = 1e-3;
        for idx in 0..6 {
            let orig = l.weights()[idx];
            l.weights_mut()[idx] = orig + eps;
            let lp = loss(&l, &x);
            l.weights_mut()[idx] = orig - eps;
            let lm = loss(&l, &x);
            l.weights_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((pg.weights[idx] - fd).abs() < 1e-2);
        }
        let mut xv = x.clone();
        for idx in 0..3 {
            let orig = xv.as_slice()[idx];
            xv.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&l, &xv);
            xv.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&l, &xv);
            xv.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((gx.as_slice()[idx] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn accepts_unflattened_input_of_right_length() {
        let l = Linear::zeros(12, 4);
        let x = Tensor3::zeros(3, 2, 2);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (4, 1, 1));
    }
}
