//! Non-overlapping spatial max pooling.
//!
//! The paper's networks use 2×2 max pooling. After 1-bit quantization the
//! pooling of binary activations degenerates into a logical OR (§3.1); that
//! degenerate path lives in `sei-quantize`, while this module provides the
//! full-precision layer used for training and the float baseline.

use crate::tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// `s×s` max pooling with stride `s` (window edges that do not fit are
/// dropped, i.e. the output spatial size is `floor(in / s)` — matching the
/// paper's Network 2/3 where an 11×11 map pools to 5×5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2d {
    size: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer with window/stride `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be positive");
        MaxPool2d { size }
    }

    /// Window side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward pass; returns the pooled tensor and, per output element, the
    /// flat input-buffer index of the winning input (for the backward pass).
    pub fn forward(&self, x: &Tensor3) -> (Tensor3, Vec<usize>) {
        let s = self.size;
        let (c, h, w) = x.shape();
        let (oh, ow) = (h / s, w / s);
        let mut y = Tensor3::zeros(c, oh, ow);
        let mut argmax = vec![0usize; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::MIN;
                    let mut best_idx = 0;
                    for dy in 0..s {
                        for dx in 0..s {
                            let (iy, ix) = (oy * s + dy, ox * s + dx);
                            let v = x.get(ch, iy, ix);
                            if v > best {
                                best = v;
                                best_idx = (ch * h + iy) * w + ix;
                            }
                        }
                    }
                    y.set(ch, oy, ox, best);
                    argmax[(ch * oh + oy) * ow + ox] = best_idx;
                }
            }
        }
        (y, argmax)
    }

    /// Backward pass: routes each upstream gradient to the input element that
    /// won its pooling window.
    pub fn backward(&self, x: &Tensor3, argmax: &[usize], grad_y: &Tensor3) -> Tensor3 {
        let (c, h, w) = x.shape();
        let mut gx = Tensor3::zeros(c, h, w);
        for (g, &idx) in grad_y.as_slice().iter().zip(argmax) {
            gx.as_mut_slice()[idx] += g;
        }
        gx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_window_max() {
        let x = Tensor3::from_vec(1, 2, 4, vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 8.0, 7.0]);
        let (y, _) = MaxPool2d::new(2).forward(&x);
        assert_eq!(y.shape(), (1, 1, 2));
        assert_eq!(y.as_slice(), &[5.0, 8.0]);
    }

    #[test]
    fn forward_drops_ragged_edge() {
        // 5x5 pooled by 2 -> 2x2 (last row/col dropped)
        let mut x = Tensor3::zeros(1, 5, 5);
        x.set(0, 4, 4, 100.0); // in the dropped edge
        let (y, _) = MaxPool2d::new(2).forward(&x);
        assert_eq!(y.shape(), (1, 2, 2));
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn backward_routes_to_argmax() {
        let x = Tensor3::from_vec(1, 2, 2, vec![1.0, 9.0, 3.0, 2.0]);
        let p = MaxPool2d::new(2);
        let (_, argmax) = p.forward(&x);
        let gy = Tensor3::from_vec(1, 1, 1, vec![5.0]);
        let gx = p.backward(&x, &argmax, &gy);
        assert_eq!(gx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn multi_channel_independent() {
        let x = Tensor3::from_vec(2, 2, 2, vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0]);
        let (y, _) = MaxPool2d::new(2).forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "pool size must be positive")]
    fn zero_size_rejected() {
        let _ = MaxPool2d::new(0);
    }
}
