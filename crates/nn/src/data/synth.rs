//! Procedural generator for an MNIST-like 28×28 digit dataset.
//!
//! Each digit class is defined by a set of vector strokes (polylines and
//! arcs) in the unit square. A sample is produced by
//!
//! 1. jittering the stroke control points,
//! 2. applying a random affine transform (rotation, anisotropic scale,
//!    shear, translation),
//! 3. rasterizing the strokes with a Gaussian pen of random thickness, and
//! 4. adding pixel noise.
//!
//! The result is a 10-class task with substantial intra-class variability on
//! which the paper's 4-layer CNNs train to low error, while exhibiting the
//! ReLU-sparse intermediate-data distribution that the paper's Table 1
//! documents for real CNNs.

use super::Dataset;
use crate::tensor::Tensor3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Side length of generated images (matching MNIST).
pub const IMAGE_SIDE: usize = 28;

/// Configuration for the synthetic digit generator.
///
/// # Example
///
/// ```
/// use sei_nn::data::SynthConfig;
/// let ds = SynthConfig::new(50, 7).generate();
/// assert_eq!(ds.len(), 50);
/// let same = SynthConfig::new(50, 7).generate();
/// assert_eq!(ds, same); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of samples to generate.
    pub samples: usize,
    /// RNG seed; the same seed always yields the same dataset.
    pub seed: u64,
    /// Maximum absolute rotation in radians.
    pub max_rotation: f32,
    /// Scale factors are drawn from `[1 - scale_jitter, 1 + scale_jitter]`.
    pub scale_jitter: f32,
    /// Maximum absolute shear coefficient.
    pub max_shear: f32,
    /// Maximum absolute translation in pixels.
    pub max_shift: f32,
    /// Standard deviation of per-control-point jitter (unit-square units).
    pub point_jitter: f32,
    /// Standard deviation of additive pixel noise.
    pub pixel_noise: f32,
}

impl SynthConfig {
    /// Creates a config with the default distortion strengths.
    pub fn new(samples: usize, seed: u64) -> Self {
        SynthConfig {
            samples,
            seed,
            max_rotation: 0.16,
            scale_jitter: 0.12,
            max_shear: 0.10,
            max_shift: 1.6,
            point_jitter: 0.012,
            pixel_noise: 0.015,
        }
    }

    /// Generates the dataset. Labels cycle through the 10 classes so every
    /// prefix of the dataset is close to class-balanced.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut images = Vec::with_capacity(self.samples);
        let mut labels = Vec::with_capacity(self.samples);
        for i in 0..self.samples {
            let digit = (i % 10) as u8;
            images.push(self.render(digit, &mut rng));
            labels.push(digit);
        }
        Dataset::new(images, labels)
    }

    /// Renders a single digit sample with the given RNG.
    fn render(&self, digit: u8, rng: &mut StdRng) -> Tensor3 {
        let strokes = digit_strokes(digit);

        // Random affine transform about the glyph center.
        let theta = rng.gen_range(-self.max_rotation..=self.max_rotation);
        let sx = rng.gen_range(1.0 - self.scale_jitter..=1.0 + self.scale_jitter);
        let sy = rng.gen_range(1.0 - self.scale_jitter..=1.0 + self.scale_jitter);
        let shear = rng.gen_range(-self.max_shear..=self.max_shear);
        let tx = rng.gen_range(-self.max_shift..=self.max_shift);
        let ty = rng.gen_range(-self.max_shift..=self.max_shift);
        let (sin, cos) = theta.sin_cos();

        let side = IMAGE_SIDE as f32;
        let glyph_scale = side - 8.0; // margin
        let transform = |p: (f32, f32)| -> (f32, f32) {
            let (mut x, mut y) = (p.0 - 0.5, p.1 - 0.5);
            // shear then scale then rotate
            x += shear * y;
            x *= sx;
            y *= sy;
            let (rx, ry) = (x * cos - y * sin, x * sin + y * cos);
            (
                (rx + 0.5) * glyph_scale + 4.0 + tx,
                (ry + 0.5) * glyph_scale + 4.0 + ty,
            )
        };

        let sigma = rng.gen_range(0.55..=0.9);
        let mut img = vec![0.0f32; IMAGE_SIDE * IMAGE_SIDE];

        for stroke in &strokes {
            // jitter control points
            let pts: Vec<(f32, f32)> = stroke
                .iter()
                .map(|&(x, y)| {
                    (
                        x + gaussian(rng) * self.point_jitter,
                        y + gaussian(rng) * self.point_jitter,
                    )
                })
                .map(transform)
                .collect();
            for seg in pts.windows(2) {
                stamp_segment(&mut img, seg[0], seg[1], sigma);
            }
        }

        // Normalize peak to 1.
        let peak = img.iter().copied().fold(0.0f32, f32::max).max(1e-6);
        for v in &mut img {
            *v /= peak;
        }
        // Pixel noise, clamped to [0, 1].
        for v in &mut img {
            *v = (*v + gaussian(rng) * self.pixel_noise).clamp(0.0, 1.0);
        }
        Tensor3::from_vec(1, IMAGE_SIDE, IMAGE_SIDE, img)
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Stamps a Gaussian pen along a segment (pixel coordinates).
fn stamp_segment(img: &mut [f32], a: (f32, f32), b: (f32, f32), sigma: f32) {
    let (dx, dy) = (b.0 - a.0, b.1 - a.1);
    let len = (dx * dx + dy * dy).sqrt();
    let steps = (len / 0.3).ceil().max(1.0) as usize;
    let radius = (3.0 * sigma).ceil() as i32;
    let inv2s2 = 1.0 / (2.0 * sigma * sigma);
    for s in 0..=steps {
        let t = s as f32 / steps as f32;
        let (px, py) = (a.0 + t * dx, a.1 + t * dy);
        let (cx, cy) = (px.round() as i32, py.round() as i32);
        for yy in (cy - radius).max(0)..=(cy + radius).min(IMAGE_SIDE as i32 - 1) {
            for xx in (cx - radius).max(0)..=(cx + radius).min(IMAGE_SIDE as i32 - 1) {
                let d2 = (xx as f32 - px).powi(2) + (yy as f32 - py).powi(2);
                let v = (-d2 * inv2s2).exp();
                let idx = yy as usize * IMAGE_SIDE + xx as usize;
                if v > img[idx] {
                    img[idx] = v;
                }
            }
        }
    }
}

/// Polyline approximation of an elliptic arc.
fn arc(cx: f32, cy: f32, rx: f32, ry: f32, a0: f32, a1: f32, n: usize) -> Vec<(f32, f32)> {
    (0..=n)
        .map(|i| {
            let a = a0 + (a1 - a0) * i as f32 / n as f32;
            (cx + rx * a.cos(), cy + ry * a.sin())
        })
        .collect()
}

use std::f32::consts::PI;

/// Vector stroke templates per digit class, in unit-square coordinates
/// (x right, y down).
fn digit_strokes(digit: u8) -> Vec<Vec<(f32, f32)>> {
    match digit {
        0 => vec![arc(0.5, 0.5, 0.26, 0.36, 0.0, 2.0 * PI, 24)],
        1 => vec![
            vec![(0.36, 0.28), (0.52, 0.12), (0.52, 0.88)],
            vec![(0.36, 0.88), (0.68, 0.88)],
        ],
        2 => {
            let mut top = arc(0.5, 0.32, 0.24, 0.2, PI, 2.0 * PI, 12);
            top.push((0.26, 0.85));
            vec![top, vec![(0.26, 0.85), (0.76, 0.85)]]
        }
        3 => vec![
            arc(0.44, 0.31, 0.24, 0.19, -0.6 * PI, 0.5 * PI, 12),
            arc(0.44, 0.69, 0.26, 0.19, -0.5 * PI, 0.6 * PI, 12),
        ],
        4 => vec![
            vec![(0.62, 0.12), (0.24, 0.6), (0.8, 0.6)],
            vec![(0.62, 0.12), (0.62, 0.88)],
        ],
        5 => {
            let mut bowl = vec![(0.32, 0.48)];
            bowl.extend(arc(0.44, 0.66, 0.26, 0.2, -0.5 * PI, 0.55 * PI, 12));
            vec![vec![(0.74, 0.14), (0.32, 0.14), (0.32, 0.48)], bowl]
        }
        6 => {
            let mut tail = vec![(0.66, 0.12)];
            tail.extend(arc(0.48, 0.66, 0.2, 0.2, -0.9 * PI, -0.5 * PI, 6));
            vec![tail, arc(0.48, 0.68, 0.2, 0.19, 0.0, 2.0 * PI, 16)]
        }
        7 => vec![vec![(0.24, 0.14), (0.76, 0.14), (0.42, 0.88)]],
        8 => vec![
            arc(0.5, 0.32, 0.19, 0.17, 0.0, 2.0 * PI, 16),
            arc(0.5, 0.69, 0.22, 0.2, 0.0, 2.0 * PI, 16),
        ],
        9 => {
            let mut tail = vec![(0.68, 0.34)];
            tail.extend(vec![(0.66, 0.6), (0.58, 0.88)]);
            vec![arc(0.5, 0.32, 0.19, 0.19, 0.0, 2.0 * PI, 16), tail]
        }
        other => panic!("digit out of range: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = SynthConfig::new(30, 99).generate();
        let b = SynthConfig::new(30, 99).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthConfig::new(10, 1).generate();
        let b = SynthConfig::new(10, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn labels_are_balanced_cycle() {
        let d = SynthConfig::new(25, 3).generate();
        assert_eq!(d.labels()[0], 0);
        assert_eq!(d.labels()[10], 0);
        assert_eq!(d.labels()[13], 3);
    }

    #[test]
    fn pixels_in_unit_range() {
        let d = SynthConfig::new(20, 5).generate();
        for (img, _) in d.iter() {
            assert_eq!(img.shape(), (1, IMAGE_SIDE, IMAGE_SIDE));
            for &v in img.as_slice() {
                assert!((0.0..=1.0).contains(&v), "pixel {v} out of range");
            }
        }
    }

    #[test]
    fn images_have_ink() {
        let d = SynthConfig::new(20, 5).generate();
        for (img, label) in d.iter() {
            let ink: f32 = img.as_slice().iter().sum();
            assert!(ink > 5.0, "digit {label} image nearly blank (ink {ink})");
        }
    }

    #[test]
    fn classes_are_visually_distinct_on_average() {
        // Mean images of different classes should differ substantially;
        // a sanity check that the templates are not degenerate.
        let d = SynthConfig::new(200, 11).generate();
        let mut means = vec![vec![0.0f32; IMAGE_SIDE * IMAGE_SIDE]; 10];
        let mut counts = [0usize; 10];
        for (img, label) in d.iter() {
            let l = label as usize;
            counts[l] += 1;
            for (m, &v) in means[l].iter_mut().zip(img.as_slice()) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        for a in 0..10 {
            for b in (a + 1)..10 {
                let dist: f32 = means[a]
                    .iter()
                    .zip(&means[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                assert!(
                    dist > 1.0,
                    "mean images of classes {a} and {b} too similar (d2 {dist})"
                );
            }
        }
    }

    #[test]
    fn arc_endpoints() {
        let pts = arc(0.0, 0.0, 1.0, 1.0, 0.0, PI, 8);
        assert!((pts[0].0 - 1.0).abs() < 1e-6);
        assert!((pts[8].0 + 1.0).abs() < 1e-5);
    }
}
