//! Datasets: the [`Dataset`] container and the synthetic MNIST-like digit
//! generator ([`synth`], re-exported here).
//!
//! The original paper evaluates on the MNIST handwritten-digit files. Those
//! are not redistributable inside this repository, so [`SynthConfig`]
//! procedurally generates a 10-class 28×28 grayscale digit task with the
//! same tensor shapes and a ReLU-sparse activation profile (see `DESIGN.md`
//! §1 for the substitution rationale). Generation is deterministic from a
//! seed.

mod synth;

pub use synth::{SynthConfig, IMAGE_SIDE};

use crate::tensor::Tensor3;

/// A labelled image-classification dataset.
///
/// Images are `(1, 28, 28)` tensors with values in `[0, 1]`; labels are the
/// digit classes `0..=9`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Vec<Tensor3>,
    labels: Vec<u8>,
}

impl Dataset {
    /// Creates a dataset from parallel image/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(images: Vec<Tensor3>, labels: Vec<u8>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        Dataset { images, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Borrows sample `i` as an `(image, label)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> (&Tensor3, u8) {
        (&self.images[i], self.labels[i])
    }

    /// Borrows all images.
    pub fn images(&self) -> &[Tensor3] {
        &self.images
    }

    /// Borrows all labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Iterates over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor3, u8)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// Returns a new dataset holding only the first `n` samples (or all of
    /// them if `n >= len()`); used to scale experiments to the machine.
    pub fn truncated(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            images: self.images[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_lengths() {
        let d = Dataset::new(vec![Tensor3::zeros(1, 28, 28)], vec![3]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.sample(0).1, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::new(vec![], vec![1]);
    }

    #[test]
    fn truncated_clamps() {
        let d = Dataset::new(vec![Tensor3::zeros(1, 28, 28); 5], vec![0, 1, 2, 3, 4]);
        assert_eq!(d.truncated(3).len(), 3);
        assert_eq!(d.truncated(99).len(), 5);
        assert_eq!(d.truncated(3).labels(), &[0, 1, 2]);
    }
}
