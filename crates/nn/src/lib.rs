//! CNN substrate for the SEI (Switched-by-Input) DAC'16 reproduction.
//!
//! This crate implements, from scratch, everything the paper's software side
//! needs:
//!
//! * a small dense [`Tensor3`]/[`Matrix`] numeric core ([`tensor`]);
//! * the layer zoo of the paper's networks — convolution, ReLU, max-pooling,
//!   and fully-connected layers — with forward **and** backward passes
//!   ([`layers`]);
//! * a sequential [`Network`] container and the three paper networks of
//!   Table 2 ([`paper`]);
//! * mini-batch SGD-with-momentum training ([`train`]) with softmax
//!   cross-entropy loss ([`loss`]);
//! * a deterministic synthetic MNIST-like dataset generator ([`data`]) used
//!   in place of the original MNIST files (see `DESIGN.md` §1 for the
//!   substitution rationale);
//! * evaluation metrics ([`metrics`]);
//! * plain-text model persistence ([`serialize`]).
//!
//! # Example
//!
//! Train the paper's smallest network (Network 2 of Table 2) on a small
//! synthetic dataset and measure its error rate:
//!
//! ```
//! use sei_nn::data::SynthConfig;
//! use sei_nn::paper;
//! use sei_nn::train::{Trainer, TrainConfig};
//! use sei_nn::metrics::error_rate;
//!
//! let train = SynthConfig::new(600, 1).generate();
//! let test = SynthConfig::new(200, 2).generate();
//! let mut net = paper::network2(42);
//! let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
//! Trainer::new(cfg).fit(&mut net, &train);
//! let err = error_rate(&net, &test);
//! assert!(err < 0.9, "training should beat chance, got {err}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod paper;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use layers::{Conv2d, Layer, Linear, MaxPool2d};
pub use network::Network;
pub use tensor::{Matrix, Tensor3};

/// Errors produced by shape-checked operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Two operands had incompatible dimensions.
    Mismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand.
        lhs: Vec<usize>,
        /// Dimensions of the right-hand operand.
        rhs: Vec<usize>,
    },
}

impl core::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShapeError::Mismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}
