//! Mini-batch SGD-with-momentum training.

use crate::data::Dataset;
use crate::layers::{Layer, ParamGrad};
use crate::loss::softmax_cross_entropy;
use crate::network::Network;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sei_telemetry::{span, Heartbeat};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Seed for the per-epoch shuffle.
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.85,
            shuffle_seed: 0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean cross-entropy loss over the epoch.
    pub mean_loss: f32,
    /// Training-set error rate over the epoch (computed on the fly).
    pub train_error: f32,
}

/// Mini-batch SGD trainer with momentum and weight decay.
///
/// # Example
///
/// ```
/// use sei_nn::data::SynthConfig;
/// use sei_nn::paper;
/// use sei_nn::train::{TrainConfig, Trainer};
///
/// let data = SynthConfig::new(300, 0).generate();
/// let mut net = paper::network2(1);
/// let stats = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::default() })
///     .fit(&mut net, &data);
/// assert_eq!(stats.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainConfig,
}

/// Momentum buffers, one entry per layer (None for unweighted layers).
struct Velocity {
    per_layer: Vec<Option<ParamGrad>>,
}

impl Velocity {
    fn for_network(net: &Network) -> Self {
        let per_layer = net
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Conv(c) => Some(ParamGrad {
                    weights: vec![0.0; c.weights().len()],
                    bias: vec![0.0; c.bias().len()],
                }),
                Layer::Linear(l) => Some(ParamGrad {
                    weights: vec![0.0; l.weights().len()],
                    bias: vec![0.0; l.bias().len()],
                }),
                _ => None,
            })
            .collect();
        Velocity { per_layer }
    }
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Trains `net` in place on `data`, returning per-epoch statistics.
    pub fn fit(&self, net: &mut Network, data: &Dataset) -> Vec<EpochStats> {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let _fit_span = span!("fit");
        let mut heartbeat = Heartbeat::new("training");
        let mut rng = StdRng::seed_from_u64(self.cfg.shuffle_seed);
        let mut velocity = Velocity::for_network(net);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut lr = self.cfg.learning_rate;
        let mut stats = Vec::with_capacity(self.cfg.epochs);

        // Reused across every image: per-layer inputs and caches (conv
        // layers keep their im2col buffer alive between iterations).
        let mut inputs = Vec::new();
        let mut caches = Vec::new();

        for epoch in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut errors = 0usize;

            for batch in order.chunks(self.cfg.batch_size) {
                // Accumulate gradients over the batch.
                let mut acc: Vec<Option<ParamGrad>> = net
                    .layers()
                    .iter()
                    .map(|l| match l {
                        Layer::Conv(c) => Some(ParamGrad {
                            weights: vec![0.0; c.weights().len()],
                            bias: vec![0.0; c.bias().len()],
                        }),
                        Layer::Linear(l) => Some(ParamGrad {
                            weights: vec![0.0; l.weights().len()],
                            bias: vec![0.0; l.bias().len()],
                        }),
                        _ => None,
                    })
                    .collect();

                for &i in batch {
                    let (img, label) = data.sample(i);
                    let logits = net.forward_train_into(img, &mut inputs, &mut caches);
                    if logits.argmax() != label as usize {
                        errors += 1;
                    }
                    let (loss, mut grad) = softmax_cross_entropy(&logits, label as usize);
                    loss_sum += loss as f64;

                    for li in (0..net.len()).rev() {
                        let layer = &net.layers()[li];
                        let (gx, pg) = layer.backward(&inputs[li], &caches[li], &grad);
                        if let (Some(pg), Some(slot)) = (pg, acc[li].as_mut()) {
                            for (a, g) in slot.weights.iter_mut().zip(&pg.weights) {
                                *a += g;
                            }
                            for (a, g) in slot.bias.iter_mut().zip(&pg.bias) {
                                *a += g;
                            }
                        }
                        grad = gx;
                    }
                }

                // SGD + momentum update.
                let scale = 1.0 / batch.len() as f32;
                for (li, layer) in net.layers_mut().iter_mut().enumerate() {
                    let (Some(g), Some(v)) = (acc[li].as_ref(), velocity.per_layer[li].as_mut())
                    else {
                        continue;
                    };
                    match layer {
                        Layer::Conv(c) => {
                            update(
                                c.weights_mut(),
                                &g.weights,
                                &mut v.weights,
                                lr,
                                scale,
                                self.cfg.momentum,
                                self.cfg.weight_decay,
                            );
                            update(
                                c.bias_mut(),
                                &g.bias,
                                &mut v.bias,
                                lr,
                                scale,
                                self.cfg.momentum,
                                0.0,
                            );
                        }
                        Layer::Linear(l) => {
                            update(
                                l.weights_mut(),
                                &g.weights,
                                &mut v.weights,
                                lr,
                                scale,
                                self.cfg.momentum,
                                self.cfg.weight_decay,
                            );
                            update(
                                l.bias_mut(),
                                &g.bias,
                                &mut v.bias,
                                lr,
                                scale,
                                self.cfg.momentum,
                                0.0,
                            );
                        }
                        _ => {}
                    }
                }
            }

            stats.push(EpochStats {
                epoch,
                mean_loss: (loss_sum / data.len() as f64) as f32,
                train_error: errors as f32 / data.len() as f32,
            });
            heartbeat.tick(
                epoch + 1,
                self.cfg.epochs,
                f64::from(1.0 - stats[epoch].train_error),
            );
            lr *= self.cfg.lr_decay;
        }
        stats
    }
}

/// One SGD-momentum parameter update:
/// `v = momentum·v − lr·(g/batch + wd·p)`, `p += v`.
fn update(
    params: &mut [f32],
    grad: &[f32],
    vel: &mut [f32],
    lr: f32,
    scale: f32,
    momentum: f32,
    weight_decay: f32,
) {
    for ((p, &g), v) in params.iter_mut().zip(grad).zip(vel.iter_mut()) {
        let g = g * scale + weight_decay * *p;
        *v = momentum * *v - lr * g;
        *p += *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SynthConfig;
    use crate::metrics::error_rate;
    use crate::paper;

    #[test]
    fn loss_decreases_over_epochs() {
        let data = SynthConfig::new(400, 10).generate();
        let mut net = paper::network2(3);
        let stats = Trainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .fit(&mut net, &data);
        assert_eq!(stats.len(), 3);
        assert!(
            stats[2].mean_loss < stats[0].mean_loss,
            "loss should fall: {stats:?}"
        );
    }

    #[test]
    fn training_beats_chance() {
        let train = SynthConfig::new(800, 20).generate();
        let test = SynthConfig::new(200, 21).generate();
        let mut net = paper::network2(5);
        Trainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .fit(&mut net, &train);
        let err = error_rate(&net, &test);
        assert!(err < 0.5, "error rate {err} should beat 0.9 chance easily");
    }

    #[test]
    fn deterministic_given_seeds() {
        let data = SynthConfig::new(100, 30).generate();
        let mut a = paper::network2(4);
        let mut b = paper::network2(4);
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        };
        Trainer::new(cfg).fit(&mut a, &data);
        Trainer::new(cfg).fit(&mut b, &data);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = crate::data::Dataset::new(vec![], vec![]);
        let mut net = paper::network2(0);
        Trainer::new(TrainConfig::default()).fit(&mut net, &data);
    }
}
