//! Plain-text model persistence.
//!
//! Trained networks can be saved and re-loaded so the experiment binaries
//! don't retrain for every table. The format is a small self-describing
//! text file (stable across platforms, diff-able, no external
//! dependencies):
//!
//! ```text
//! SEI-NET v1
//! layers 5
//! conv 1 4 3
//! <36 weights>
//! <4 biases>
//! relu
//! pool 2
//! flatten
//! linear 676 10
//! ...
//! ```
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use sei_nn::{paper, serialize};
//! let net = paper::network2(3);
//! let text = serialize::to_string(&net);
//! let back = serialize::from_str(&text)?;
//! assert_eq!(net, back);
//! # Ok(())
//! # }
//! ```

use crate::layers::{Conv2d, Layer, Linear, MaxPool2d};
use crate::network::Network;
use std::fmt::Write as _;
use std::path::Path;

/// Magic header of the format.
const MAGIC: &str = "SEI-NET v1";

/// Error parsing a serialized network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetworkError {
    /// Human-readable description of what failed.
    message: String,
    /// 1-based line where the problem was found (0 = end of input).
    line: usize,
}

impl ParseNetworkError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseNetworkError {
            message: message.into(),
            line,
        }
    }
}

impl core::fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid network file (line {}): {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseNetworkError {}

/// Serializes a network to the text format.
pub fn to_string(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "layers {}", net.len());
    for layer in net.layers() {
        match layer {
            Layer::Conv(c) => {
                let _ = writeln!(
                    out,
                    "conv {} {} {}",
                    c.in_channels(),
                    c.out_channels(),
                    c.kernel()
                );
                write_floats(&mut out, c.weights());
                write_floats(&mut out, c.bias());
            }
            Layer::Relu => {
                let _ = writeln!(out, "relu");
            }
            Layer::Pool(p) => {
                let _ = writeln!(out, "pool {}", p.size());
            }
            Layer::Flatten => {
                let _ = writeln!(out, "flatten");
            }
            Layer::Linear(l) => {
                let _ = writeln!(out, "linear {} {}", l.in_features(), l.out_features());
                write_floats(&mut out, l.weights());
                write_floats(&mut out, l.bias());
            }
        }
    }
    out
}

fn write_floats(out: &mut String, values: &[f32]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        // Exact round-trip via hex-free shortest repr of the bits.
        let _ = write!(out, "{}", float_to_token(*v));
    }
    out.push('\n');
}

/// Exact binary round-trip: floats are stored as decimal when lossless is
/// guaranteed (Rust's shortest repr always round-trips f32).
fn float_to_token(v: f32) -> String {
    format!("{v}")
}

/// Deserializes a network from the text format.
///
/// # Errors
///
/// Returns [`ParseNetworkError`] on any structural or numeric problem.
pub fn from_str(text: &str) -> Result<Network, ParseNetworkError> {
    let mut lines = text.lines().enumerate();
    let mut next_line = |what: &'static str| -> Result<(usize, &str), ParseNetworkError> {
        for (i, l) in lines.by_ref() {
            if !l.trim().is_empty() {
                return Ok((i + 1, l.trim()));
            }
        }
        Err(ParseNetworkError::new(
            format!("unexpected end of input, expected {what}"),
            0,
        ))
    };

    let (ln, magic) = next_line("header")?;
    if magic != MAGIC {
        return Err(ParseNetworkError::new(
            format!("bad header {magic:?}, expected {MAGIC:?}"),
            ln,
        ));
    }
    let (ln, count_line) = next_line("layer count")?;
    let count: usize = match count_line.strip_prefix("layers ") {
        Some(n) => n
            .trim()
            .parse()
            .map_err(|_| ParseNetworkError::new("bad layer count", ln))?,
        None => return Err(ParseNetworkError::new("expected `layers <n>`", ln)),
    };

    let parse_floats =
        |line: &str, ln: usize, expect: usize| -> Result<Vec<f32>, ParseNetworkError> {
            let vals: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
            let vals = vals.map_err(|_| ParseNetworkError::new("bad float literal", ln))?;
            if vals.len() != expect {
                return Err(ParseNetworkError::new(
                    format!("expected {expect} values, found {}", vals.len()),
                    ln,
                ));
            }
            Ok(vals)
        };

    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        let (ln, header) = next_line("layer header")?;
        let mut parts = header.split_whitespace();
        match parts.next() {
            Some("conv") => {
                let dims: Vec<usize> = parts
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| ParseNetworkError::new("bad conv dims", ln))?;
                let [ic, oc, k] = dims[..] else {
                    return Err(ParseNetworkError::new("conv needs 3 dims", ln));
                };
                let (wl, wline) = next_line("conv weights")?;
                let weights = parse_floats(wline, wl, oc * ic * k * k)?;
                let (bl, bline) = next_line("conv bias")?;
                let bias = parse_floats(bline, bl, oc)?;
                layers.push(Layer::Conv(Conv2d::from_parts(ic, oc, k, weights, bias)));
            }
            Some("linear") => {
                let dims: Vec<usize> = parts
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| ParseNetworkError::new("bad linear dims", ln))?;
                let [inf, outf] = dims[..] else {
                    return Err(ParseNetworkError::new("linear needs 2 dims", ln));
                };
                let (wl, wline) = next_line("linear weights")?;
                let weights = parse_floats(wline, wl, inf * outf)?;
                let (bl, bline) = next_line("linear bias")?;
                let bias = parse_floats(bline, bl, outf)?;
                layers.push(Layer::Linear(Linear::from_parts(inf, outf, weights, bias)));
            }
            Some("relu") => layers.push(Layer::Relu),
            Some("flatten") => layers.push(Layer::Flatten),
            Some("pool") => {
                let size: usize = parts
                    .next()
                    .ok_or_else(|| ParseNetworkError::new("pool needs a size", ln))?
                    .parse()
                    .map_err(|_| ParseNetworkError::new("bad pool size", ln))?;
                if size == 0 {
                    return Err(ParseNetworkError::new("pool size must be positive", ln));
                }
                layers.push(Layer::Pool(MaxPool2d::new(size)));
            }
            other => {
                return Err(ParseNetworkError::new(
                    format!("unknown layer kind {other:?}"),
                    ln,
                ))
            }
        }
    }
    Ok(Network::new(layers))
}

/// Saves a network to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save(net: &Network, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, to_string(net))
}

/// Loads a network from a file.
///
/// # Errors
///
/// Returns an [`std::io::Error`] for I/O problems (parse errors are wrapped
/// as `InvalidData`).
pub fn load(path: impl AsRef<Path>) -> std::io::Result<Network> {
    let text = std::fs::read_to_string(path)?;
    from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn roundtrip_all_paper_networks() {
        for which in paper::PaperNetwork::ALL {
            let net = which.build(17);
            let text = to_string(&net);
            let back = from_str(&text).expect("parse");
            assert_eq!(net, back, "{}", which.name());
        }
    }

    #[test]
    fn roundtrip_preserves_exact_bits() {
        let mut net = paper::network2(3);
        // poke in some awkward values
        if let Layer::Conv(c) = &mut net.layers_mut()[0] {
            c.weights_mut()[0] = f32::MIN_POSITIVE;
            c.weights_mut()[1] = -1.234_567_8e-20;
            c.weights_mut()[2] = 3.402_823e38;
        }
        let back = from_str(&to_string(&net)).expect("parse");
        assert_eq!(net, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sei_nn_serialize_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("net2.seinet");
        let net = paper::network2(9);
        save(&net, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(net, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_header() {
        let err = from_str("NOT-A-NET\nlayers 0\n").unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_truncated_input() {
        let net = paper::network2(1);
        let text = to_string(&net);
        let cut = &text[..text.len() / 2];
        assert!(from_str(cut).is_err());
    }

    #[test]
    fn rejects_wrong_value_count() {
        let text = "SEI-NET v1\nlayers 1\nconv 1 1 2\n1 2 3\n0\n";
        let err = from_str(text).unwrap_err();
        assert!(err.to_string().contains("expected 4 values"));
    }

    #[test]
    fn rejects_unknown_layer() {
        let text = "SEI-NET v1\nlayers 1\nattention 8\n";
        assert!(from_str(text).is_err());
    }
}
