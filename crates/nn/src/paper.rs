//! The three CNN configurations of the paper's Table 2, plus their reported
//! reference numbers.
//!
//! | | Network 1 | Network 2 | Network 3 |
//! |---|---|---|---|
//! | Conv 1 | 12 kernels 5×5 (25×12) | 4 kernels 3×3 (9×4) | 6 kernels 3×3 (9×6) |
//! | Pool | 2×2 | 2×2 | 2×2 |
//! | Conv 2 | 64 kernels 5×5 (300×64) | 8 kernels 3×3 (36×8) | 12 kernels 3×3 (54×12) |
//! | Pool | 2×2 | 2×2 | 2×2 |
//! | FC | 1024×10 | 200×10 | 300×10 |
//! | Complexity | 0.006 GOPs | 0.00016 GOPs | 0.0003 GOPs |

use crate::init;
use crate::layers::{Conv2d, Layer, Linear, MaxPool2d};
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Input shape shared by all paper networks: one 28×28 grayscale channel.
pub const INPUT_SHAPE: (usize, usize, usize) = (1, 28, 28);

/// Number of classes.
pub const CLASSES: usize = 10;

/// Identifier for one of the paper's Table 2 networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperNetwork {
    /// 12×5×5 / 64×5×5 / FC 1024×10 — "Network 1".
    Network1,
    /// 4×3×3 / 8×3×3 / FC 200×10 — "Network 2".
    Network2,
    /// 6×3×3 / 12×3×3 / FC 300×10 — "Network 3".
    Network3,
}

impl PaperNetwork {
    /// All three networks, in paper order.
    pub const ALL: [PaperNetwork; 3] = [
        PaperNetwork::Network1,
        PaperNetwork::Network2,
        PaperNetwork::Network3,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperNetwork::Network1 => "Network 1",
            PaperNetwork::Network2 => "Network 2",
            PaperNetwork::Network3 => "Network 3",
        }
    }

    /// Builds the network with He-uniform initialized weights.
    pub fn build(self, seed: u64) -> Network {
        match self {
            PaperNetwork::Network1 => network1(seed),
            PaperNetwork::Network2 => network2(seed),
            PaperNetwork::Network3 => network3(seed),
        }
    }

    /// The complexity figure reported in Table 2 (GOPs per picture).
    pub fn paper_gops(self) -> f64 {
        match self {
            PaperNetwork::Network1 => 0.006,
            PaperNetwork::Network2 => 0.00016,
            PaperNetwork::Network3 => 0.0003,
        }
    }

    /// The pre-quantization error rate the paper reports in Table 3.
    pub fn paper_error_before_quantization(self) -> f32 {
        match self {
            PaperNetwork::Network1 => 0.0093,
            PaperNetwork::Network2 => 0.0288,
            PaperNetwork::Network3 => 0.0153,
        }
    }

    /// The post-quantization error rate the paper reports in Table 3.
    pub fn paper_error_after_quantization(self) -> f32 {
        match self {
            PaperNetwork::Network1 => 0.0163,
            PaperNetwork::Network2 => 0.0342,
            PaperNetwork::Network3 => 0.0207,
        }
    }
}

fn conv_net(c1: (usize, usize), c2: (usize, usize), seed: u64) -> Network {
    let (k1, n1) = (c1.1, c1.0);
    let (k2, n2) = (c2.1, c2.0);
    let (_, h, w) = INPUT_SHAPE;
    let s1 = (h - k1 + 1, w - k1 + 1);
    let p1 = (s1.0 / 2, s1.1 / 2);
    let s2 = (p1.0 - k2 + 1, p1.1 - k2 + 1);
    let p2 = (s2.0 / 2, s2.1 / 2);
    let fc_in = n2 * p2.0 * p2.1;
    let mut net = Network::new(vec![
        Layer::Conv(Conv2d::zeros(1, n1, k1)),
        Layer::Relu,
        Layer::Pool(MaxPool2d::new(2)),
        Layer::Conv(Conv2d::zeros(n1, n2, k2)),
        Layer::Relu,
        Layer::Pool(MaxPool2d::new(2)),
        Layer::Flatten,
        Layer::Linear(Linear::zeros(fc_in, CLASSES)),
    ]);
    init::he_uniform(&mut net, seed);
    net
}

/// Network 1 of Table 2: 12 kernels 5×5, 64 kernels 5×5, FC 1024×10.
pub fn network1(seed: u64) -> Network {
    conv_net((12, 5), (64, 5), seed)
}

/// Network 2 of Table 2: 4 kernels 3×3, 8 kernels 3×3, FC 200×10.
pub fn network2(seed: u64) -> Network {
    conv_net((4, 3), (8, 3), seed)
}

/// Network 3 of Table 2: 6 kernels 3×3, 12 kernels 3×3, FC 300×10.
pub fn network3(seed: u64) -> Network {
    conv_net((6, 3), (12, 3), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network1_weight_matrix_shapes_match_table2() {
        let net = network1(0);
        // Conv1 weight matrix 25x12, Conv2 300x64, FC 1024x10.
        if let Layer::Conv(c) = &net.layers()[0] {
            assert_eq!((c.matrix_rows(), c.out_channels()), (25, 12));
        } else {
            unreachable!()
        }
        if let Layer::Conv(c) = &net.layers()[3] {
            assert_eq!((c.matrix_rows(), c.out_channels()), (300, 64));
        } else {
            unreachable!()
        }
        if let Layer::Linear(l) = &net.layers()[7] {
            assert_eq!((l.in_features(), l.out_features()), (1024, 10));
        } else {
            unreachable!()
        }
    }

    #[test]
    fn network2_shapes_match_table2() {
        let net = network2(0);
        if let Layer::Conv(c) = &net.layers()[3] {
            assert_eq!((c.matrix_rows(), c.out_channels()), (36, 8));
        } else {
            unreachable!()
        }
        if let Layer::Linear(l) = &net.layers()[7] {
            assert_eq!((l.in_features(), l.out_features()), (200, 10));
        } else {
            unreachable!()
        }
        assert_eq!(net.output_shape(INPUT_SHAPE), (10, 1, 1));
    }

    #[test]
    fn network3_shapes_match_table2() {
        let net = network3(0);
        if let Layer::Conv(c) = &net.layers()[3] {
            assert_eq!((c.matrix_rows(), c.out_channels()), (54, 12));
        } else {
            unreachable!()
        }
        if let Layer::Linear(l) = &net.layers()[7] {
            assert_eq!((l.in_features(), l.out_features()), (300, 10));
        } else {
            unreachable!()
        }
    }

    #[test]
    fn all_networks_forward_on_input_shape() {
        for pn in PaperNetwork::ALL {
            let net = pn.build(1);
            let y = net.forward(&crate::tensor::Tensor3::zeros(1, 28, 28));
            assert_eq!(y.shape(), (10, 1, 1), "{}", pn.name());
        }
    }
}
