//! Softmax cross-entropy loss for classifier training.

use crate::tensor::Tensor3;

/// Numerically-stable softmax over a flat logit tensor.
///
/// # Example
///
/// ```
/// use sei_nn::{loss, Tensor3};
/// let p = loss::softmax(&Tensor3::from_flat(vec![0.0, 0.0]));
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Tensor3) -> Vec<f32> {
    let xs = logits.as_slice();
    let max = xs.iter().copied().fold(f32::MIN, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy of softmax probabilities against a class label, plus the
/// gradient with respect to the logits (`p − one_hot(label)`).
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn softmax_cross_entropy(logits: &Tensor3, label: usize) -> (f32, Tensor3) {
    let p = softmax(logits);
    assert!(label < p.len(), "label {label} out of range {}", p.len());
    let loss = -(p[label].max(1e-12)).ln();
    let mut grad = p;
    grad[label] -= 1.0;
    (loss, Tensor3::from_flat(grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&Tensor3::from_flat(vec![1.0, 2.0, 3.0]));
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Tensor3::from_flat(vec![1.0, 2.0]));
        let b = softmax(&Tensor3::from_flat(vec![101.0, 102.0]));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&Tensor3::from_flat(vec![1000.0, 0.0]));
        assert!(p[0] > 0.999 && p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor3::from_flat(vec![0.3, -0.7, 1.2]);
        let (_, grad) = softmax_cross_entropy(&logits, 2);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (lossp, _) = softmax_cross_entropy(&lp, 2);
            let (lossm, _) = softmax_cross_entropy(&lm, 2);
            let fd = (lossp - lossm) / (2.0 * eps);
            assert!((grad.as_slice()[i] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn perfect_prediction_low_loss() {
        let (loss, _) = softmax_cross_entropy(&Tensor3::from_flat(vec![20.0, 0.0]), 0);
        assert!(loss < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let _ = softmax_cross_entropy(&Tensor3::from_flat(vec![0.0, 0.0]), 5);
    }
}
