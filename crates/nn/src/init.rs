//! Deterministic weight initialization.

use crate::layers::Layer;
use crate::network::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fills a buffer with uniform values in `[-limit, limit]`.
fn fill_uniform(rng: &mut StdRng, buf: &mut [f32], limit: f32) {
    for v in buf {
        *v = rng.gen_range(-limit..=limit);
    }
}

/// He/Kaiming-style uniform initialization for every weighted layer of a
/// network, in place. Biases are zeroed.
///
/// The limit per layer is `sqrt(6 / fan_in)` — appropriate for the ReLU
/// networks of the paper.
///
/// # Example
///
/// ```
/// use sei_nn::{init, paper};
/// let mut a = paper::network2(7);
/// let b = paper::network2(7);
/// assert_eq!(a, b); // same seed, same weights
/// init::he_uniform(&mut a, 8);
/// assert_ne!(a, b); // reseeded differently
/// ```
pub fn he_uniform(net: &mut Network, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for layer in net.layers_mut() {
        match layer {
            Layer::Conv(c) => {
                let fan_in = c.matrix_rows() as f32;
                let limit = (6.0 / fan_in).sqrt();
                fill_uniform(&mut rng, c.weights_mut(), limit);
                c.bias_mut().fill(0.0);
            }
            Layer::Linear(l) => {
                let fan_in = l.in_features() as f32;
                let limit = (6.0 / fan_in).sqrt();
                fill_uniform(&mut rng, l.weights_mut(), limit);
                l.bias_mut().fill(0.0);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Network::new(vec![Layer::Linear(Linear::zeros(10, 5))]);
        let mut b = a.clone();
        he_uniform(&mut a, 123);
        he_uniform(&mut b, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Network::new(vec![Layer::Linear(Linear::zeros(10, 5))]);
        let mut b = a.clone();
        he_uniform(&mut a, 1);
        he_uniform(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_fan_in_limit() {
        let mut net = Network::new(vec![Layer::Conv(Conv2d::zeros(3, 4, 5))]);
        he_uniform(&mut net, 9);
        let limit = (6.0f32 / 75.0).sqrt();
        if let Layer::Conv(c) = &net.layers()[0] {
            assert!(c.weights().iter().all(|w| w.abs() <= limit + 1e-6));
            assert!(c.weights().iter().any(|w| w.abs() > limit * 0.5));
            assert!(c.bias().iter().all(|&b| b == 0.0));
        } else {
            unreachable!();
        }
    }
}
