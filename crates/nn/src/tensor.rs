//! Dense numeric containers: a channel-major 3-D tensor and a row-major
//! matrix.
//!
//! These are deliberately minimal — just what the CNN layers, the quantizer
//! and the crossbar mapper need — but fully shape-checked and tested.

use serde::{Deserialize, Serialize};

/// A dense 3-D tensor laid out channel-major: index `(c, y, x)` maps to
/// `data[(c * h + y) * w + x]`.
///
/// Feature maps everywhere in this workspace are `Tensor3`s; a flat vector
/// (e.g. the input of a fully-connected layer) is represented as a
/// `Tensor3` with `h == w == 1`.
///
/// # Example
///
/// ```
/// use sei_nn::Tensor3;
/// let mut t = Tensor3::zeros(2, 3, 4);
/// t.set(1, 2, 3, 5.0);
/// assert_eq!(t.get(1, 2, 3), 5.0);
/// assert_eq!(t.len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor3 {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Tensor3 {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c * h * w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            c * h * w,
            "buffer length {} does not match shape ({c},{h},{w})",
            data.len()
        );
        Tensor3 { c, h, w, data }
    }

    /// Creates a flat tensor (shape `(n, 1, 1)`) from a vector.
    pub fn from_flat(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor3 {
            c: n,
            h: 1,
            w: 1,
            data,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Shape as a `(channels, height, width)` triple.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }

    /// Reads the element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index is out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.offset(c, y, x)]
    }

    /// Writes the element at `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let o = self.offset(c, y, x);
        self.data[o] = v;
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor as a flat `(len, 1, 1)` tensor (no copy of
    /// semantic content; the buffer is moved).
    pub fn into_flat(self) -> Tensor3 {
        let n = self.data.len();
        Tensor3 {
            c: n,
            h: 1,
            w: 1,
            data: self.data,
        }
    }

    /// Largest element, or 0.0 for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::MIN, f32::max).max(0.0)
    }

    /// Smallest element, or 0.0 for an empty tensor.
    pub fn min(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().copied().fold(f32::MAX, f32::min)
        }
    }

    /// Index of the largest element (ties resolved to the first).
    ///
    /// Useful for classification argmax over a logit tensor.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut bv = f32::MIN;
        for (i, &v) in self.data.iter().enumerate() {
            if v > bv {
                bv = v;
                best = i;
            }
        }
        best
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scales every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }
}

/// A dense row-major matrix of `f32`.
///
/// The paper's "weight matrix" of a layer (e.g. the 300×64 matrix of Conv
/// Layer 2 in Network 1) is represented as a `Matrix` with one **column per
/// output neuron / kernel** and one **row per input element**, matching the
/// crossbar orientation (inputs drive rows, outputs are column currents).
///
/// # Example
///
/// ```
/// use sei_nn::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// let y = m.matvec(&[1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices (all rows must have equal length).
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes the matrix to `rows × cols`, reusing the existing buffer
    /// capacity. Contents are reset to zero.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Computes `y = Mᵀ·x`-style per-row dot products: `y[r] = Σ_c M[r,c]·x[c]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            // Skip zero inputs, like `vecmat`: binary activations make
            // most of them zero.
            for (a, b) in row.iter().zip(x) {
                if *b == 0.0 {
                    continue;
                }
                acc += a * b;
            }
            *out = acc;
        }
        y
    }

    /// Computes the column-space product `y[c] = Σ_r M[r,c]·x[r]` — the
    /// crossbar direction (inputs drive rows, outputs accumulate down
    /// columns, Equ. (3) of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "vecmat length mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, m) in y.iter_mut().zip(row) {
                *o += m * xv;
            }
        }
        y
    }

    /// Dense matrix–matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Mean of each column, as a length-`cols` vector.
    ///
    /// This is the `a_i` "average vector" of Equ. (10) used by the matrix
    /// homogenization objective.
    pub fn column_means(&self) -> Vec<f32> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for r in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for m in &mut means {
            *m *= inv;
        }
        means
    }

    /// Builds a new matrix consisting of the given rows of `self`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            assert!(r < self.rows, "row index {r} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_indexing_roundtrip() {
        let mut t = Tensor3::zeros(3, 4, 5);
        let mut v = 0.0;
        for c in 0..3 {
            for y in 0..4 {
                for x in 0..5 {
                    t.set(c, y, x, v);
                    v += 1.0;
                }
            }
        }
        let mut expect = 0.0;
        for c in 0..3 {
            for y in 0..4 {
                for x in 0..5 {
                    assert_eq!(t.get(c, y, x), expect);
                    expect += 1.0;
                }
            }
        }
    }

    #[test]
    fn tensor_layout_is_channel_major() {
        let mut t = Tensor3::zeros(2, 2, 2);
        t.set(1, 0, 0, 9.0);
        assert_eq!(t.as_slice()[4], 9.0);
    }

    #[test]
    fn tensor_argmax_first_tie() {
        let t = Tensor3::from_flat(vec![1.0, 3.0, 3.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn tensor_max_min() {
        let t = Tensor3::from_flat(vec![-2.0, 5.0, 0.5]);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -2.0);
    }

    #[test]
    fn tensor_into_flat_preserves_data() {
        let t = Tensor3::from_vec(2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let f = t.into_flat();
        assert_eq!(f.shape(), (4, 1, 1));
        assert_eq!(f.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn tensor_from_vec_rejects_bad_len() {
        let _ = Tensor3::from_vec(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn matvec_and_vecmat_agree_with_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let x = [1.0, -1.0];
        let via_vecmat = m.vecmat(&x);
        let via_transpose = m.transposed().matvec(&x);
        assert_eq!(via_vecmat, via_transpose);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn column_means_known() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.column_means(), vec![2.0, 3.0]);
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::from_rows(&[&[1.0][..], &[2.0][..], &[3.0][..]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn transposed_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        assert_eq!(m.transposed().transposed(), m);
    }
}
