//! Evaluation metrics: error rate and confusion matrix.
//!
//! The paper reports classification **error rate** (Tables 3–5); these
//! helpers compute it for a full-precision [`Network`] — the quantized and
//! crossbar-level evaluation paths in `sei-quantize` / `sei-core` provide
//! their own equivalents that share the [`ConfusionMatrix`] type.

use crate::data::Dataset;
use crate::network::Network;
use sei_engine::{Engine, DEFAULT_CHUNK};
use serde::{Deserialize, Serialize};

/// Classification error rate of a network over a dataset, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn error_rate(net: &Network, data: &Dataset) -> f32 {
    assert!(!data.is_empty(), "empty dataset");
    let mut errors = 0usize;
    for (img, label) in data.iter() {
        if net.classify(img) != label as usize {
            errors += 1;
        }
    }
    errors as f32 / data.len() as f32
}

/// Error rate of an arbitrary classifier closure over a dataset.
///
/// Convenient for the quantized / crossbar evaluation paths which are not
/// [`Network`]s.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn error_rate_with(
    data: &Dataset,
    mut classify: impl FnMut(&crate::tensor::Tensor3) -> usize,
) -> f32 {
    assert!(!data.is_empty(), "empty dataset");
    let mut errors = 0usize;
    for (img, label) in data.iter() {
        if classify(img) != label as usize {
            errors += 1;
        }
    }
    errors as f32 / data.len() as f32
}

/// Parallel [`error_rate`]: the dataset is evaluated in fixed-size
/// chunks fanned out over `engine`'s worker threads.
///
/// Classification is deterministic, so the result is exactly equal to
/// the sequential [`error_rate`] at any thread count.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn error_rate_par(net: &Network, data: &Dataset, engine: Engine) -> f32 {
    error_rate_with_par(data, engine, |img| net.classify(img))
}

/// Parallel [`error_rate_with`] for `Sync` classifier closures (the
/// quantized / split / crossbar evaluation paths).
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn error_rate_with_par(
    data: &Dataset,
    engine: Engine,
    classify: impl Fn(&crate::tensor::Tensor3) -> usize + Sync,
) -> f32 {
    assert!(!data.is_empty(), "empty dataset");
    let labels = data.labels();
    let errors: usize = engine
        .map_chunks(data.images(), DEFAULT_CHUNK, |c, chunk| {
            let base = c * DEFAULT_CHUNK;
            chunk
                .iter()
                .enumerate()
                .filter(|(i, img)| classify(img) != labels[base + i] as usize)
                .count()
        })
        .into_iter()
        .sum();
    errors as f32 / data.len() as f32
}

/// A `classes × classes` confusion matrix (`rows = true label`,
/// `cols = prediction`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(truth, prediction)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(truth < self.classes && prediction < self.classes);
        self.counts[truth * self.classes + prediction] += 1;
    }

    /// Count at `(truth, prediction)`.
    pub fn count(&self, truth: usize, prediction: usize) -> u32 {
        self.counts[truth * self.classes + prediction]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Overall error rate.
    pub fn error_rate(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u32 = (0..self.classes).map(|i| self.count(i, i)).sum();
        1.0 - correct as f32 / total as f32
    }

    /// Fills the matrix from a network evaluated over a dataset.
    pub fn evaluate(net: &Network, data: &Dataset, classes: usize) -> Self {
        let mut cm = ConfusionMatrix::new(classes);
        for (img, label) in data.iter() {
            cm.record(label as usize, net.classify(img));
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_basic() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 3);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.error_rate() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_matrix_zero_error() {
        assert_eq!(ConfusionMatrix::new(2).error_rate(), 0.0);
    }

    #[test]
    fn error_rate_with_closure() {
        let data = crate::data::SynthConfig::new(20, 1).generate();
        // Predict label 0 for everything: 2 of 20 are class 0.
        let err = error_rate_with(&data, |_| 0);
        assert!((err - 0.9).abs() < 1e-6);
    }

    #[test]
    fn parallel_error_rate_matches_sequential() {
        let data = crate::data::SynthConfig::new(130, 7).generate();
        let net = crate::paper::network2(3);
        let seq = error_rate(&net, &data);
        for threads in [1, 2, 7] {
            let par = error_rate_par(&net, &data, Engine::new(threads));
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn error_rate_empty_panics() {
        let data = crate::data::Dataset::new(vec![], vec![]);
        let net = crate::paper::network2(0);
        let _ = error_rate(&net, &data);
    }
}
