//! `sei` — umbrella crate for the reproduction of *"Switched by Input:
//! Power Efficient Structure for RRAM-based Convolutional Neural Network"*
//! (Xia et al., DAC 2016).
//!
//! This crate re-exports the whole workspace under one name so the
//! examples and integration tests can use a single dependency:
//!
//! * [`nn`] — CNN substrate (tensors, layers, training, synthetic MNIST);
//! * [`device`] — behavioural RRAM device models;
//! * [`faults`] — stuck-at fault maps and endurance wear-out models;
//! * [`crossbar`] — crossbar arrays, peripherals and the SEI structure;
//! * [`estimate`] — runtime output-activation estimation for ReLU-skip
//!   gating of crossbar reads (`SEI_ESTIMATOR`);
//! * [`quantize`] — 1-bit quantization (Algorithm 1);
//! * [`mapping`] — splitting, homogenization, dynamic thresholds, layout;
//! * [`cost`] — area/power/energy model;
//! * [`serve`] — batched inference serving: deterministic discrete-event
//!   simulation of request admission, batching and tile scheduling;
//! * [`lifecycle`] — live reprogramming of mapped networks: write-pulse
//!   scheduling, endurance budgets and wear-aware tile rotation inside
//!   the serving simulation;
//! * [`core`] — the [`core::Accelerator`] builder and experiment drivers;
//! * [`snn`] — the spiking-network extension (the paper's future-work
//!   direction);
//! * [`telemetry`] — structured tracing, physical-event counters and
//!   NDJSON run reports (`SEI_LOG`, `SEI_REPORT_JSON`).
//!
//! # Quickstart
//!
//! ```
//! use sei::core::AcceleratorBuilder;
//! use sei::nn::{data::SynthConfig, paper, train::{Trainer, TrainConfig}};
//!
//! // Train the paper's smallest network on synthetic digits…
//! let train = SynthConfig::new(400, 1).generate();
//! let mut net = paper::network2(42);
//! Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() })
//!     .fit(&mut net, &train);
//!
//! // …then quantize, split and cost it.
//! let acc = AcceleratorBuilder::new(net)
//!     .build(&train.truncated(100))
//!     .expect("valid configuration and non-empty calibration set");
//! for summary in acc.summaries() {
//!     println!("{:?}", summary);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sei_core as core;
pub use sei_cost as cost;
pub use sei_crossbar as crossbar;
pub use sei_device as device;
pub use sei_engine as engine;
pub use sei_estimate as estimate;
pub use sei_faults as faults;
pub use sei_lifecycle as lifecycle;
pub use sei_mapping as mapping;
pub use sei_nn as nn;
pub use sei_quantize as quantize;
pub use sei_serve as serve;
pub use sei_snn as snn;
pub use sei_telemetry as telemetry;
